// The morsel-driven scheduler: one engine-wide worker pool executes every
// leaf scan as (shard, container-run) morsels pulled from shared per-slot
// queues with work stealing, replacing the old static per-shard scatter
// (⌈Workers/nonEmpty⌉ goroutines plus a fresh token channel per query).
//
// The pool is lazily created per Engine and sized to Engine.Workers
// (default GOMAXPROCS). Workers are spawned on demand when jobs are
// dispatched and exit as soon as no queued unit remains, so an idle engine
// holds no goroutines and nothing needs an explicit Close. Each worker
// prefers the queue matching its slot (units are dealt round-robin across
// slots, so a hot shard's morsels spread over all queues) and steals from
// the longest queue when its own runs dry — skewed container distributions
// no longer park workers behind one hot shard.
//
// Blocked sends must not wedge the pool: a worker whose emit would block
// releases its slot first (spawning a replacement if queued work remains),
// performs the blocking send, then reacquires a slot. A query whose
// consumer reads slowly therefore parks its own batches, never the other
// queries sharing the engine.
//
// Deadlock discipline for operators: any node that defers consuming one
// input (hash-join probe, neighbor-join probe, INTERSECT's right child,
// MINUS's left child) must not open that input until it is ready to drain
// it — an opened scan's morsels are queued immediately, and morsels
// blocked on an unconsumed stream would otherwise occupy the very workers
// the consuming side needs.
package qe

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"sdss/internal/htm"
	"sdss/internal/query"
)

// defaultMorselRows is the target record count per morsel: big enough that
// per-morsel dispatch overhead vanishes against scan work, small enough
// that stealing can rebalance a skewed shard mid-query.
const defaultMorselRows = 4096

func (e *Engine) morselRows() int {
	if e.MorselRows > 0 {
		return e.MorselRows
	}
	return defaultMorselRows
}

// getPool returns the engine-wide scheduler, created on first dispatch and
// sized to the worker setting in effect then.
func (e *Engine) getPool() *pool {
	e.poolOnce.Do(func() {
		e.pl = newPool(e.workers())
	})
	return e.pl
}

// morsel is one unit of scan work: a run of consecutive candidate
// containers on one shard slice, sized at plan time to ~morselRows records.
type morsel struct {
	shard int
	cids  []htm.ID
}

// unit is one queued work item: a scan morsel, or a generic function for
// non-scan pool work (the partitioned hash-join build).
type unit struct {
	shard int
	cids  []htm.ID
	run   func()
}

// uqueue is one slot's FIFO deque. Owners pop the front; thieves pop the
// back, so a steal takes the work its owner would reach last.
type uqueue struct {
	items []unit
	head  int
}

func (q *uqueue) size() int { return len(q.items) - q.head }

func (q *uqueue) push(u unit) { q.items = append(q.items, u) }

func (q *uqueue) popFront() unit {
	u := q.items[q.head]
	q.items[q.head] = unit{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return u
}

func (q *uqueue) popBack() unit {
	n := len(q.items) - 1
	u := q.items[n]
	q.items[n] = unit{}
	q.items = q.items[:n]
	return u
}

// poolJob is one dispatched batch of units plus its completion hook.
type poolJob struct {
	queues  []uqueue
	pending int // queued units
	active  int // units currently running
	steals  int64
	run     func(u unit)
	// finish runs (on its own goroutine) once every unit completed, with
	// the job's steal count.
	finish func(steals int64)
}

// pool is the engine-wide morsel scheduler.
type pool struct {
	size int // concurrently-running worker bound

	mu       sync.Mutex
	slotFree *sync.Cond
	running  int // workers holding a slot (blocked emitters release theirs)
	pending  int // queued units across all jobs
	nextWID  int
	jobs     []*poolJob
}

func newPool(size int) *pool {
	if size < 1 {
		size = 1
	}
	p := &pool{size: size}
	p.slotFree = sync.NewCond(&p.mu)
	return p
}

// dispatch queues a job's units (dealt round-robin across slots) and spawns
// workers up to the pool bound. It never blocks on the work itself.
func (p *pool) dispatch(j *poolJob, units []unit) {
	p.mu.Lock()
	j.queues = make([]uqueue, p.size)
	for i, u := range units {
		j.queues[i%p.size].push(u)
	}
	j.pending = len(units)
	p.pending += len(units)
	p.jobs = append(p.jobs, j)
	p.spawnLocked()
	p.mu.Unlock()
}

// spawnLocked starts workers while free slots and queued units both exist.
// Overshoot is harmless: a worker that loses the race for work exits.
func (p *pool) spawnLocked() {
	for n := p.pending; p.running < p.size && n > 0; n-- {
		p.running++
		wid := p.nextWID
		p.nextWID++
		go p.worker(wid % p.size)
	}
}

// worker pulls units until none remain anywhere, then exits.
func (p *pool) worker(slot int) {
	for {
		p.mu.Lock()
		j, u, ok := p.takeLocked(slot)
		if !ok {
			p.running--
			p.slotFree.Signal()
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		j.run(u)
		p.mu.Lock()
		j.active--
		done := j.pending == 0 && j.active == 0
		if done {
			p.removeLocked(j)
		}
		steals := j.steals
		p.mu.Unlock()
		if done {
			// On its own goroutine: a finish hook may flush withheld batches
			// (blocking sends) and must not do so while holding a pool slot.
			go j.finish(steals)
		}
	}
}

// takeLocked picks the next unit for a worker: the front of its own slot's
// queue (oldest job first), else a steal from the back of the longest queue
// anywhere.
func (p *pool) takeLocked(slot int) (*poolJob, unit, bool) {
	for _, j := range p.jobs {
		if j.queues[slot].size() > 0 {
			u := j.queues[slot].popFront()
			j.pending--
			p.pending--
			j.active++
			return j, u, true
		}
	}
	var bj *poolJob
	bq, bn := -1, 0
	for _, j := range p.jobs {
		for qi := range j.queues {
			if n := j.queues[qi].size(); n > bn {
				bj, bq, bn = j, qi, n
			}
		}
	}
	if bj == nil {
		return nil, unit{}, false
	}
	u := bj.queues[bq].popBack()
	bj.pending--
	p.pending--
	bj.active++
	bj.steals++
	return bj, u, true
}

func (p *pool) removeLocked(j *poolJob) {
	for i, jj := range p.jobs {
		if jj == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			return
		}
	}
}

// blockingSend wraps a send that failed its non-blocking attempt: the
// worker releases its slot (spawning a replacement if queued units would
// otherwise wait), blocks in send, then reacquires. The pool keeps flowing
// while one query's consumer reads slowly.
func (p *pool) blockingSend(send func() bool) bool {
	p.mu.Lock()
	p.running--
	p.spawnLocked()
	p.slotFree.Signal()
	p.mu.Unlock()
	ok := send()
	p.mu.Lock()
	for p.running >= p.size {
		p.slotFree.Wait()
	}
	p.running++
	p.mu.Unlock()
	return ok
}

// runParallel executes fn(0..n-1) on the pool and waits for all of them —
// the generic fan-out used by the partitioned hash-join build. Single-unit
// and single-worker cases run inline.
func (e *Engine) runParallel(ctx context.Context, n int, fn func(int)) {
	p := e.getPool()
	if n <= 1 || p.size <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	done := make(chan struct{})
	units := make([]unit, n)
	for i := range units {
		units[i] = unit{run: func() {
			if ctx.Err() == nil {
				fn(i)
			}
		}}
	}
	j := &poolJob{
		run:    func(u unit) { u.run() },
		finish: func(int64) { close(done) },
	}
	p.dispatch(j, units)
	<-done
}

// scanMode selects how a scan job delivers its results.
type scanMode int

const (
	// scanStream gathers every morsel's batches into one bounded MPSC
	// channel — the order-free ASAP path.
	scanStream scanMode = iota
	// scanPerShard keeps one stream per shard slice for order-sensitive
	// consumers (the k-way merge); each closes when its last morsel ends.
	scanPerShard
	// scanFold computes per-container aggregate partials and combines them
	// in container order — the aggregate pushdown.
	scanFold
)

// contFold is one container's aggregate partial. Partials combine sorted
// by container ID, so SUM/AVG are bit-identical across worker AND shard
// counts (the container set is invariant under trixel-mod-N sharding).
type contFold struct {
	cid htm.ID
	p   aggPartial
}

// scanJob is one leaf scan's execution state on the pool: the morsels come
// from the plan, the workers are pooled per job, and the mode decides how
// batches leave.
type scanJob struct {
	e      *Engine
	op     *scanOp
	ctx    context.Context
	rows   *Rows
	mode   scanMode
	agg    query.AggFunc
	pooled bool // units run on pool workers (not the single-morsel fast path)

	out       chan Batch     // scanStream / scanFold output
	outs      []chan Batch   // scanPerShard outputs
	shardLeft []atomic.Int32 // scanPerShard: morsels left per shard

	// blocked holds withheld batches in Blocking comparison mode (E13):
	// one list per shard stream (index 0 for scanStream).
	blockMu sync.Mutex
	blocked [][]Batch

	foldMu sync.Mutex
	folds  []contFold

	// Worker state is pooled per job: a unit checks out a scanWorker
	// (accessor, column reader, current batch) and returns it, so the
	// number of workers ever built equals the job's peak parallelism.
	wmu  sync.Mutex
	free []*scanWorker
	all  []*scanWorker
}

func (o *scanOp) newJob(ctx context.Context, rows *Rows, mode scanMode) *scanJob {
	j := &scanJob{e: o.e, op: o, ctx: ctx, rows: rows, mode: mode}
	if o.e.Blocking {
		n := 1
		if mode == scanPerShard {
			n = len(o.st.Shards())
		}
		j.blocked = make([][]Batch, n)
	}
	return j
}

// dispatch hands the job's morsels to the scheduler. Zero morsels finish
// immediately; a single morsel takes the fast path — one plain goroutine,
// no pool bookkeeping at all (small cone queries stop paying scatter
// setup). Everything else becomes pool units.
func (j *scanJob) dispatch() {
	ms := j.op.morsels
	if st := j.op.stats; st != nil {
		st.markStart()
		st.morsels.Add(int64(len(ms)))
	}
	switch len(ms) {
	case 0:
		j.finish(0)
	case 1:
		u := unit{shard: ms[0].shard, cids: ms[0].cids}
		go func() {
			j.runUnit(u)
			j.finish(0)
		}()
	default:
		j.pooled = true
		units := make([]unit, len(ms))
		for i, m := range ms {
			units[i] = unit{shard: m.shard, cids: m.cids}
		}
		pj := &poolJob{run: j.runUnit, finish: j.finish}
		j.e.getPool().dispatch(pj, units)
	}
}

// getWorker checks a scan worker out of the job's free list, building one
// on first need.
func (j *scanJob) getWorker() *scanWorker {
	j.wmu.Lock()
	if n := len(j.free); n > 0 {
		w := j.free[n-1]
		j.free = j.free[:n-1]
		j.wmu.Unlock()
		return w
	}
	j.wmu.Unlock()
	w, err := newScanWorker(j.e, j.op)
	if err != nil {
		j.rows.setErr(err)
		return nil
	}
	j.wmu.Lock()
	j.all = append(j.all, w)
	j.wmu.Unlock()
	return w
}

func (j *scanJob) putWorker(w *scanWorker) {
	j.wmu.Lock()
	j.free = append(j.free, w)
	j.wmu.Unlock()
}

// emitTo builds the delivery func for one output channel: a non-blocking
// fast path, then — on a pool worker — a slot-releasing blocking send, so
// a slow consumer parks its own query only.
func (j *scanJob) emitTo(out chan Batch) func(Batch) bool {
	return func(b Batch) bool {
		select {
		case out <- b:
			return true
		default:
		}
		send := func() bool {
			select {
			case out <- b:
				return true
			case <-j.ctx.Done():
				// The batch stays with the worker (finish recycles it): the
				// stream was cut off mid-production.
				j.rows.interrupted.Store(true)
				return false
			}
		}
		if j.pooled {
			return j.e.getPool().blockingSend(send)
		}
		return send()
	}
}

// emitBlocked withholds batches for Blocking comparison mode (E13).
func (j *scanJob) emitBlocked(s int) func(Batch) bool {
	return func(b Batch) bool {
		j.blockMu.Lock()
		j.blocked[s] = append(j.blocked[s], b)
		j.blockMu.Unlock()
		return true
	}
}

// flushBlocked releases one stream's withheld batches after its morsels
// completed (Blocking mode only).
func (j *scanJob) flushBlocked(s int) {
	j.blockMu.Lock()
	bl := j.blocked[s]
	j.blocked[s] = nil
	j.blockMu.Unlock()
	out := j.out
	if j.mode == scanPerShard {
		out = j.outs[s]
	}
	for i, b := range bl {
		select {
		case out <- b:
		case <-j.ctx.Done():
			// The withheld batches are dropped: the consumer must learn the
			// blocking-mode result is partial.
			j.rows.interrupted.Store(true)
			for _, rest := range bl[i:] {
				RecycleBatch(rest)
			}
			return
		}
	}
}

func (j *scanJob) fail(err error) {
	if err == context.Canceled {
		j.rows.interrupted.Store(true)
	} else {
		j.rows.setErr(err)
	}
}

// runUnit executes one morsel: point a pooled worker at the morsel's shard,
// wire its emit for the job's mode, scan the container run. Per-shard
// stream accounting happens even when the unit is skipped on cancellation.
func (j *scanJob) runUnit(u unit) {
	defer j.unitDone(u)
	if j.ctx.Err() != nil {
		j.rows.interrupted.Store(true)
		return
	}
	w := j.getWorker()
	if w == nil {
		return // accessor failure, already reported
	}
	defer j.putWorker(w)
	w.st = j.op.st.Shards()[u.shard]
	st := j.op.stats

	if j.mode == scanFold {
		for _, cid := range u.cids {
			if j.ctx.Err() != nil {
				j.rows.interrupted.Store(true)
				return
			}
			var p aggPartial
			w.emit = func(b Batch) bool {
				for i := range b {
					p.fold(j.agg, &b[i])
				}
				if st != nil {
					st.rowsOut.Add(int64(len(b)))
				}
				RecycleBatch(b)
				return true
			}
			examined, ok := w.scanContainer(cid)
			if st != nil {
				st.rowsIn.Add(int64(examined))
			}
			if !ok {
				j.fail(w.err)
				return
			}
			w.flush() // folds the remainder; this emit cannot refuse
			j.foldMu.Lock()
			j.folds = append(j.folds, contFold{cid: cid, p: p})
			j.foldMu.Unlock()
		}
		return
	}

	switch {
	case j.e.Blocking && j.mode == scanPerShard:
		w.emit = j.emitBlocked(u.shard)
	case j.e.Blocking:
		w.emit = j.emitBlocked(0)
	case j.mode == scanPerShard:
		w.emit = j.emitTo(j.outs[u.shard])
	default:
		w.emit = j.emitTo(j.out)
	}
	for _, cid := range u.cids {
		if j.ctx.Err() != nil {
			j.rows.interrupted.Store(true)
			return
		}
		examined, ok := w.scanContainer(cid)
		if st != nil {
			st.rowsIn.Add(int64(examined))
		}
		if !ok {
			j.fail(w.err)
			return
		}
	}
	if j.mode == scanPerShard {
		// Per-shard streams close per shard: rows must not linger in a
		// worker that moves on to another shard's morsel.
		w.flush()
	}
}

// unitDone runs after every morsel, including skipped ones: in per-shard
// mode the shard's stream closes when its last morsel accounts itself.
func (j *scanJob) unitDone(u unit) {
	if j.mode != scanPerShard {
		return
	}
	if j.shardLeft[u.shard].Add(-1) == 0 {
		if j.e.Blocking {
			s := u.shard
			go func() {
				j.flushBlocked(s)
				close(j.outs[s])
			}()
			return
		}
		close(j.outs[u.shard])
	}
}

// finish completes the job once every unit ran: flush worker remainders
// (stream mode keeps rows batched across morsels), recycle worker buffers,
// fold the pool counters into the plan stats, and close or emit the
// output. It runs on its own goroutine, never on a pool slot.
func (j *scanJob) finish(steals int64) {
	st := j.op.stats
	if j.mode == scanStream {
		for _, w := range j.all {
			w.emit = func(b Batch) bool {
				select {
				case j.out <- b:
					return true
				case <-j.ctx.Done():
					j.rows.interrupted.Store(true)
					return false
				}
			}
			if !w.flush() {
				break
			}
		}
	}
	for _, w := range j.all {
		RecycleBatch(w.batch)
		w.batch = nil
		if w.reader != nil && st != nil {
			st.bytesDecoded.Add(w.reader.BytesDecoded())
		}
	}
	if st != nil {
		st.steals.Add(steals)
		st.workers.Store(int64(len(j.all)))
	}
	switch j.mode {
	case scanStream:
		if j.e.Blocking {
			j.flushBlocked(0)
		}
		close(j.out)
	case scanFold:
		j.finishFold()
		if st != nil {
			st.markEnd()
		}
	}
}

// finishFold combines the per-container partials in container-ID order and
// emits the single aggregate row. An empty fold set still answers (COUNT
// of nothing is 0), matching the stream aggregate.
func (j *scanJob) finishFold() {
	defer close(j.out)
	sort.Slice(j.folds, func(a, b int) bool { return j.folds[a].cid < j.folds[b].cid })
	var total aggPartial
	for i := range j.folds {
		total.combine(j.folds[i].p)
	}
	select {
	case j.out <- Batch{{Values: []float64{total.final(j.agg)}}}:
	case <-j.ctx.Done():
		j.rows.interrupted.Store(true)
	}
}
