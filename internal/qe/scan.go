package qe

import (
	"context"
	"sync"

	"sdss/internal/htm"
	"sdss/internal/query"
	"sdss/internal/store"
)

// runScan executes a leaf query node against one shard slice: the HTM
// coverage (computed once per query by runSelect) prunes the slice's
// container list, nWorkers decode and filter candidates in parallel, and
// result batches stream out as soon as they fill — the data-pump end of
// the ASAP push. The scatter half of scatter-gather runs one of these per
// slice concurrently; tokens is the query-wide pool bounding how many
// workers across all slices process containers at once.
func (e *Engine) runScan(ctx context.Context, st *store.Store, cs *query.CompiledSelect, rangeSet *htm.RangeSet, nWorkers int, tokens chan struct{}, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)

	// Candidate containers within this slice.
	var containers []htm.ID
	for _, id := range st.Containers() {
		if rangeSet == nil || rangeSet.OverlapsTrixel(id) {
			containers = append(containers, id)
		}
	}

	// Hidden values appended after the projection: the sort key and/or
	// aggregate operand the upper nodes need.
	hidden := make([]query.AttrID, 0, 2)
	if cs.Order != query.AttrInvalid {
		hidden = append(hidden, cs.Order)
	}
	if cs.Agg != query.AggNone && cs.Agg != query.AggCount {
		hidden = append(hidden, cs.AggCol)
	}

	if nWorkers > len(containers) {
		nWorkers = len(containers)
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	work := make(chan htm.ID, len(containers))
	for _, id := range containers {
		work <- id
	}
	close(work)

	var wg sync.WaitGroup
	// emitFn delivers one batch; in blocking comparison mode (E13) batches
	// accumulate in memory and only flow after the scan completes.
	var blockMu sync.Mutex
	var blocked []Batch
	emitFn := func(b Batch) bool {
		select {
		case out <- b:
			return true
		case <-ctx.Done():
			rows.interrupted.Store(true)
			return false
		}
	}
	if e.Blocking {
		emitFn = func(b Batch) bool {
			blockMu.Lock()
			blocked = append(blocked, b)
			blockMu.Unlock()
			return true
		}
	}

	wg.Add(nWorkers)
	for w := 0; w < nWorkers; w++ {
		go func() {
			defer wg.Done()
			dec, err := newDecoder(cs.Table)
			if err != nil {
				rows.setErr(err)
				return
			}
			getter := query.Getter(dec.get)
			batch := make(Batch, 0, e.batchSize())
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				b := make(Batch, len(batch))
				copy(b, batch)
				batch = batch[:0]
				return emitFn(b)
			}
			for cid := range work {
				// One token per container in flight: across all shard
				// slices at most e.workers() of these sections run at once.
				select {
				case tokens <- struct{}{}:
				case <-ctx.Done():
					rows.interrupted.Store(true)
					return
				}
				if ctx.Err() != nil {
					<-tokens
					rows.interrupted.Store(true)
					return
				}
				err := st.ForEachInContainer(cid, func(rec []byte) error {
					// Cheap prefilter on the embedded key before paying
					// for a decode: skip records whose fine trixel falls
					// outside the coverage.
					if rangeSet != nil && !rangeSet.Contains(st.KeyOf(rec)) {
						return nil
					}
					if err := dec.decode(rec); err != nil {
						return err
					}
					if cs.Pred != nil && !cs.Pred(getter) {
						return nil
					}
					res := Result{ObjID: dec.objID()}
					if n := len(cs.Cols) + len(hidden); n > 0 {
						res.Values = make([]float64, 0, n)
						for _, col := range cs.Cols {
							res.Values = append(res.Values, getter(col))
						}
						for _, col := range hidden {
							res.Values = append(res.Values, getter(col))
						}
					}
					batch = append(batch, res)
					if len(batch) >= e.batchSize() {
						if !flush() {
							return context.Canceled
						}
					}
					return nil
				})
				<-tokens
				if err != nil && err != context.Canceled {
					rows.setErr(err)
					return
				}
			}
			flush()
		}()
	}
	go func() {
		wg.Wait()
		if e.Blocking {
			for _, b := range blocked {
				select {
				case out <- b:
				case <-ctx.Done():
					close(out)
					return
				}
			}
		}
		close(out)
	}()
	return out
}
