package qe

import (
	"context"
	"sync"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/query"
	"sdss/internal/store"
)

// rowAccessor is what a scan worker needs from a decoder: position on a
// record, attribute access for the compiled predicate and projection, and
// the object identity. Two implementations exist: the selective offset-based
// query.RowReader (default — reads only referenced attributes) and the
// legacy full-struct decoders of attr.go (Engine.FullDecode, kept as the
// measured baseline of experiment E16).
type rowAccessor interface {
	reset(rec []byte) error
	objID() catalog.ObjID
	getter() query.Getter
}

// selectiveRow adapts query.RowReader to the accessor interface.
type selectiveRow struct{ rr *query.RowReader }

func (s selectiveRow) reset(rec []byte) error { return s.rr.Reset(rec) }
func (s selectiveRow) objID() catalog.ObjID   { return s.rr.ObjID() }
func (s selectiveRow) getter() query.Getter   { return s.rr.Get }

// newAccessor builds the per-worker row accessor.
func (e *Engine) newAccessor(t query.Table) (rowAccessor, error) {
	if e.FullDecode {
		return newDecoder(t)
	}
	rr, err := query.NewRowReader(t)
	if err != nil {
		return nil, err
	}
	return selectiveRow{rr: rr}, nil
}

// runScan executes a leaf query node against one shard slice. The physical
// planner has already chosen the access path: containers is the slice's
// candidate list after coverage and zone-map pruning, and rangeSet is
// non-nil only when the planner judged per-record fine filtering worth its
// cost (the index-versus-scan crossover). Surviving containers are decoded
// selectively: the compiled getter reads only the attributes the predicate
// and projection reference, at fixed byte offsets, instead of decoding
// whole structs. nWorkers process containers in parallel and result batches
// stream out as soon as they fill — the data-pump end of the ASAP push.
// tokens is the query-wide pool bounding how many workers across all slices
// process containers at once. Under EXPLAIN ANALYZE, stats counts the
// records examined (rows in).
func (e *Engine) runScan(ctx context.Context, st *store.Store, cs *query.CompiledSelect, rangeSet *htm.RangeSet, containers []htm.ID, nWorkers int, tokens chan struct{}, rows *Rows, stats *opStats) <-chan Batch {
	out := make(chan Batch, 4)

	// Hidden values appended after the projection: the sort key and/or
	// aggregate operand the upper nodes need.
	hidden := make([]query.AttrID, 0, 2)
	if cs.Order != query.AttrInvalid {
		hidden = append(hidden, cs.Order)
	}
	if cs.Agg != query.AggNone && cs.Agg != query.AggCount {
		hidden = append(hidden, cs.AggCol)
	}
	width := len(cs.Cols) + len(hidden)

	if nWorkers > len(containers) {
		nWorkers = len(containers)
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	work := make(chan htm.ID, len(containers))
	for _, id := range containers {
		work <- id
	}
	close(work)

	var wg sync.WaitGroup
	// emitFn delivers one batch, transferring ownership; in blocking
	// comparison mode (E13) batches accumulate in memory and only flow
	// after the scan completes.
	var blockMu sync.Mutex
	var blocked []Batch
	emitFn := func(b Batch) bool {
		select {
		case out <- b:
			return true
		case <-ctx.Done():
			rows.interrupted.Store(true)
			return false
		}
	}
	if e.Blocking {
		emitFn = func(b Batch) bool {
			blockMu.Lock()
			blocked = append(blocked, b)
			blockMu.Unlock()
			return true
		}
	}

	bs := e.batchSize()
	wg.Add(nWorkers)
	for w := 0; w < nWorkers; w++ {
		go func() {
			defer wg.Done()
			acc, err := e.newAccessor(cs.Table)
			if err != nil {
				rows.setErr(err)
				return
			}
			getter := acc.getter()
			// The batch buffer comes from the pool; Values of all its
			// results are carved out of one backing array sized for a full
			// batch, so the per-record path allocates nothing. Every
			// successful emit transfers ownership and immediately replaces
			// the buffer, so whatever the worker still holds on any exit
			// path (cancellation, scan error, the empty post-flush buffer)
			// is the worker's to recycle.
			batch := getBatch(bs)
			defer func() { RecycleBatch(batch) }()
			var vals []float64
			if width > 0 {
				vals = make([]float64, 0, bs*width)
			}
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				if !emitFn(batch) {
					return false
				}
				batch = getBatch(bs)
				if width > 0 {
					vals = make([]float64, 0, bs*width)
				}
				return true
			}
			for cid := range work {
				// One token per container in flight: across all shard
				// slices at most e.workers() of these sections run at once.
				select {
				case tokens <- struct{}{}:
				case <-ctx.Done():
					rows.interrupted.Store(true)
					return
				}
				if ctx.Err() != nil {
					<-tokens
					rows.interrupted.Store(true)
					return
				}
				examined := 0
				err := st.ForEachInContainer(cid, func(rec []byte) error {
					examined++
					// Cheap prefilter on the embedded key before paying
					// for attribute reads: skip records whose fine trixel
					// falls outside the coverage.
					if rangeSet != nil && !rangeSet.Contains(st.KeyOf(rec)) {
						return nil
					}
					if err := acc.reset(rec); err != nil {
						return err
					}
					if cs.Pred != nil && !cs.Pred(getter) {
						return nil
					}
					res := Result{ObjID: acc.objID(), Key: st.KeyOf(rec)}
					if width > 0 {
						start := len(vals)
						for _, col := range cs.Cols {
							vals = append(vals, getter(col))
						}
						for _, col := range hidden {
							vals = append(vals, getter(col))
						}
						res.Values = vals[start:len(vals):len(vals)]
					}
					batch = append(batch, res)
					if len(batch) >= bs {
						if !flush() {
							return context.Canceled
						}
					}
					return nil
				})
				<-tokens
				if stats != nil {
					stats.rowsIn.Add(int64(examined))
				}
				if err != nil && err != context.Canceled {
					rows.setErr(err)
					return
				}
			}
			flush()
		}()
	}
	go func() {
		wg.Wait()
		if e.Blocking {
			for i, b := range blocked {
				select {
				case out <- b:
				case <-ctx.Done():
					// The withheld batches are dropped: the consumer must
					// learn the blocking-mode result is partial.
					rows.interrupted.Store(true)
					for _, rest := range blocked[i:] {
						RecycleBatch(rest)
					}
					close(out)
					return
				}
			}
		}
		close(out)
	}()
	return out
}

// zoneAdmit returns the zone-map admission check for a select, or nil when
// zone pruning cannot apply (no bounds, or disabled via NoZone).
func (e *Engine) zoneAdmit(cs *query.CompiledSelect) func(min, max []float64, hasNaN []bool) bool {
	if e.NoZone || !cs.Bounds.Constrained() {
		return nil
	}
	return cs.Bounds.AdmitZone
}
