package qe

import (
	"context"
	"sync"

	"sdss/internal/htm"
	"sdss/internal/query"
)

// runScan executes a leaf query node: the HTM coverage prunes the container
// list, workers decode and filter candidates in parallel, and result
// batches stream out as soon as they fill — the data-pump end of the ASAP
// push.
func (e *Engine) runScan(ctx context.Context, cs *query.CompiledSelect, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	st, err := e.storeFor(cs.Table)
	if err != nil {
		rows.setErr(err)
		close(out)
		return out
	}
	cov, err := e.coverage(cs)
	if err != nil {
		rows.setErr(err)
		close(out)
		return out
	}
	var rangeSet *htm.RangeSet
	if cov != nil {
		rangeSet = cov.RangeSet()
	}

	// Candidate containers.
	var containers []htm.ID
	for _, id := range st.Containers() {
		if rangeSet == nil || rangeSet.OverlapsTrixel(id) {
			containers = append(containers, id)
		}
	}

	// Hidden values appended after the projection: the sort key and/or
	// aggregate operand the upper nodes need.
	hidden := make([]query.AttrID, 0, 2)
	if cs.Order != query.AttrInvalid {
		hidden = append(hidden, cs.Order)
	}
	if cs.Agg != query.AggNone && cs.Agg != query.AggCount {
		hidden = append(hidden, cs.AggCol)
	}

	nWorkers := e.workers()
	if nWorkers > len(containers) {
		nWorkers = len(containers)
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	work := make(chan htm.ID, len(containers))
	for _, id := range containers {
		work <- id
	}
	close(work)

	var wg sync.WaitGroup
	// emitFn delivers one batch; in blocking comparison mode (E13) batches
	// accumulate in memory and only flow after the scan completes.
	var blockMu sync.Mutex
	var blocked []Batch
	emitFn := func(b Batch) bool {
		select {
		case out <- b:
			return true
		case <-ctx.Done():
			rows.interrupted.Store(true)
			return false
		}
	}
	if e.Blocking {
		emitFn = func(b Batch) bool {
			blockMu.Lock()
			blocked = append(blocked, b)
			blockMu.Unlock()
			return true
		}
	}

	wg.Add(nWorkers)
	for w := 0; w < nWorkers; w++ {
		go func() {
			defer wg.Done()
			dec, err := newDecoder(cs.Table)
			if err != nil {
				rows.setErr(err)
				return
			}
			getter := query.Getter(dec.get)
			batch := make(Batch, 0, e.batchSize())
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				b := make(Batch, len(batch))
				copy(b, batch)
				batch = batch[:0]
				return emitFn(b)
			}
			for cid := range work {
				if ctx.Err() != nil {
					rows.interrupted.Store(true)
					return
				}
				err := st.ForEachInContainer(cid, func(rec []byte) error {
					// Cheap prefilter on the embedded key before paying
					// for a decode: skip records whose fine trixel falls
					// outside the coverage.
					if rangeSet != nil && !rangeSet.Contains(st.KeyOf(rec)) {
						return nil
					}
					if err := dec.decode(rec); err != nil {
						return err
					}
					if cs.Pred != nil && !cs.Pred(getter) {
						return nil
					}
					res := Result{ObjID: dec.objID()}
					if n := len(cs.Cols) + len(hidden); n > 0 {
						res.Values = make([]float64, 0, n)
						for _, col := range cs.Cols {
							res.Values = append(res.Values, getter(col))
						}
						for _, col := range hidden {
							res.Values = append(res.Values, getter(col))
						}
					}
					batch = append(batch, res)
					if len(batch) >= e.batchSize() {
						if !flush() {
							return context.Canceled
						}
					}
					return nil
				})
				if err != nil && err != context.Canceled {
					rows.setErr(err)
					return
				}
			}
			flush()
		}()
	}
	go func() {
		wg.Wait()
		if e.Blocking {
			for _, b := range blocked {
				select {
				case out <- b:
				case <-ctx.Done():
					close(out)
					return
				}
			}
		}
		close(out)
	}()
	return out
}
