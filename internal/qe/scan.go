package qe

import (
	"context"

	"sdss/internal/catalog"
	"sdss/internal/colblk"
	"sdss/internal/htm"
	"sdss/internal/query"
	"sdss/internal/store"
)

// rowAccessor is what a scan worker needs from a decoder: position on a
// record, attribute access for the compiled predicate and projection, and
// the object identity. Two implementations exist: the selective offset-based
// query.RowReader (default — reads only referenced attributes) and the
// legacy full-struct decoders of attr.go (Engine.FullDecode, kept as the
// measured baseline of experiment E16).
type rowAccessor interface {
	reset(rec []byte) error
	objID() catalog.ObjID
	getter() query.Getter
}

// selectiveRow adapts query.RowReader to the accessor interface.
type selectiveRow struct{ rr *query.RowReader }

func (s selectiveRow) reset(rec []byte) error { return s.rr.Reset(rec) }
func (s selectiveRow) objID() catalog.ObjID   { return s.rr.ObjID() }
func (s selectiveRow) getter() query.Getter   { return s.rr.Get }

// newAccessor builds the per-worker row accessor.
func (e *Engine) newAccessor(t query.Table) (rowAccessor, error) {
	if e.FullDecode {
		return newDecoder(t)
	}
	rr, err := query.NewRowReader(t)
	if err != nil {
		return nil, err
	}
	return selectiveRow{rr: rr}, nil
}

// scanWorker is one scan goroutine's working state: the row accessor, the
// column reader with its selection scratch, and the current output batch
// carved from the pool.
type scanWorker struct {
	cs       *query.CompiledSelect
	sp       *scanPlan
	st       *store.Store
	rangeSet *htm.RangeSet
	stats    *opStats

	acc    rowAccessor
	getter query.Getter

	// Kernel-path scratch, reused across containers: the column reader's
	// decode buffers, the selection vector, and the per-output key slices.
	reader  *colblk.Reader
	sel     []int32
	outKeys [][]uint64

	bs      int
	flushAt int // ramps 32→bs so the first results ship ASAP
	batch   Batch
	vals    []float64
	emit    func(Batch) bool
	err     error
}

// initialFlushAt is the first-batch size of the emit ramp: the first batch
// ships as soon as a handful of results exist (time-to-first-row is the
// whole point of the ASAP push), then the threshold doubles up to the full
// batch size so the steady state keeps its amortization.
const initialFlushAt = 32

// flush delivers the current batch (transferring ownership) and replaces
// the buffer and its carved value array.
func (w *scanWorker) flush() bool {
	if len(w.batch) == 0 {
		return true
	}
	if !w.emit(w.batch) {
		return false
	}
	if w.flushAt < w.bs {
		w.flushAt *= 2
		if w.flushAt > w.bs {
			w.flushAt = w.bs
		}
	}
	w.batch = getBatch(w.bs)
	if w.sp.width > 0 {
		w.vals = make([]float64, 0, w.bs*w.sp.width)
	}
	return true
}

// scanContainer processes one container, taking the kernel path when a
// fresh column slab exists and falling back to the row loop otherwise
// (legacy archives without COLBLK sidecars run entirely on the fallback).
// It returns the number of records examined and whether the worker should
// continue; on false, w.err carries the failure (context.Canceled for an
// interrupted emit).
func (w *scanWorker) scanContainer(cid htm.ID) (int, bool) {
	if w.sp.kernel != nil {
		if data, count, slab := w.st.ColumnData(cid); slab != nil {
			return w.scanKernel(data, count, slab)
		}
	}
	return w.scanRows(cid)
}

// scanRows is the legacy row loop: reset the accessor on every record, run
// the compiled predicate, project through the getter.
func (w *scanWorker) scanRows(cid htm.ID) (int, bool) {
	examined := 0
	err := w.st.ForEachInContainer(cid, func(rec []byte) error {
		examined++
		// Cheap prefilter on the embedded key before paying for attribute
		// reads: skip records whose fine trixel falls outside the coverage.
		if w.rangeSet != nil && !w.rangeSet.Contains(w.st.KeyOf(rec)) {
			return nil
		}
		if err := w.acc.reset(rec); err != nil {
			return err
		}
		if w.cs.Pred != nil && !w.cs.Pred(w.getter) {
			return nil
		}
		res := Result{ObjID: w.acc.objID(), Key: w.st.KeyOf(rec)}
		if w.sp.width > 0 {
			start := len(w.vals)
			for _, col := range w.cs.Cols {
				w.vals = append(w.vals, w.getter(col))
			}
			for _, col := range w.sp.hidden {
				w.vals = append(w.vals, w.getter(col))
			}
			res.Values = w.vals[start:len(w.vals):len(w.vals)]
		}
		w.batch = append(w.batch, res)
		if len(w.batch) >= w.flushAt && !w.flush() {
			return context.Canceled
		}
		return nil
	})
	if err != nil {
		w.err = err
		return examined, false
	}
	return examined, true
}

// scanKernel runs the vectorized path over one container's column slab:
// block-level probes first (a constant or dictionary block whose keys
// cannot match dismisses the container without unpacking a code), then the
// branch-free range filters build a selection vector over decoded key
// columns, and only survivors materialize — from keys for stored
// attributes, through the row accessor for derived ones and any residual
// predicate.
func (w *scanWorker) scanKernel(data []byte, count int, slab *colblk.Slab) (int, bool) {
	kp := w.sp.kernel
	if count == 0 {
		return 0, true
	}
	if kp.never {
		if w.stats != nil {
			w.stats.blocksSkipped.Add(1)
		}
		return 0, true
	}
	for i := range kp.preds {
		if !kp.preds[i].probe(&slab.Blocks[kp.preds[i].col]) {
			if w.stats != nil {
				w.stats.blocksSkipped.Add(1)
			}
			return 0, true
		}
	}
	w.reader.Reset(slab)
	if cap(w.sel) < count {
		w.sel = make([]int32, count)
	}
	sel := w.sel[:count]
	n := -1
	for i := range kp.preds {
		p := &kp.preds[i]
		n = p.filter(w.reader.Keys(p.col), sel, n)
		if n == 0 {
			return count, true
		}
	}
	htmKeys := w.reader.Keys(kp.htmCol)
	if n < 0 {
		// No range predicates (an exact unfiltered scan): select all.
		for i := range sel {
			sel[i] = int32(i)
		}
		n = count
	}
	if w.rangeSet != nil {
		m := 0
		for _, si := range sel[:n] {
			if w.rangeSet.Contains(htm.ID(htmKeys[si])) {
				sel[m] = si
				m++
			}
		}
		if n = m; n == 0 {
			return count, true
		}
	}
	objKeys := w.reader.Keys(kp.objCol)
	outKeys := w.outKeys[:0]
	for _, oc := range kp.outs {
		if oc.stored {
			outKeys = append(outKeys, w.reader.Keys(int(oc.attr)))
		} else {
			outKeys = append(outKeys, nil)
		}
	}
	w.outKeys = outKeys
	recSize := w.st.Options().RecordSize
	for _, si := range sel[:n] {
		i := int(si)
		if kp.needRow {
			if err := w.acc.reset(data[i*recSize : (i+1)*recSize]); err != nil {
				w.err = err
				return count, false
			}
			if !kp.exact && w.cs.Pred != nil && !w.cs.Pred(w.getter) {
				continue
			}
		}
		res := Result{ObjID: catalog.ObjID(objKeys[i]), Key: htm.ID(htmKeys[i])}
		if w.sp.width > 0 {
			start := len(w.vals)
			for oi, oc := range kp.outs {
				if oc.stored {
					w.vals = append(w.vals, oc.kind.Value(outKeys[oi][i]))
				} else {
					w.vals = append(w.vals, w.getter(oc.attr))
				}
			}
			res.Values = w.vals[start:len(w.vals):len(w.vals)]
		}
		w.batch = append(w.batch, res)
		if len(w.batch) >= w.flushAt && !w.flush() {
			w.err = context.Canceled
			return count, false
		}
	}
	return count, true
}

// newScanWorker builds one pooled scan worker for a leaf scan job: the row
// accessor, the kernel reader when the plan compiled one, and the first
// batch buffer. The batch buffer comes from the pool; Values of all its
// results are carved out of one backing array sized for a full batch, so
// the per-record path allocates nothing. Every successful emit transfers
// ownership and immediately replaces the buffer, so whatever the worker
// still holds on any exit path (cancellation, scan error, the empty
// post-flush buffer) is the job's to recycle at finish. The worker's shard
// store (w.st) and emit are bound per morsel by the scheduler.
func newScanWorker(e *Engine, o *scanOp) (*scanWorker, error) {
	acc, err := e.newAccessor(o.cs.Table)
	if err != nil {
		return nil, err
	}
	bs := e.batchSize()
	w := &scanWorker{
		cs: o.cs, sp: o.plan, rangeSet: o.rangeSet, stats: o.stats,
		acc: acc, getter: acc.getter(),
		bs: bs, flushAt: min(initialFlushAt, bs), batch: getBatch(bs),
	}
	if o.plan.kernel != nil {
		w.reader = colblk.NewReader()
	}
	if o.plan.width > 0 {
		w.vals = make([]float64, 0, bs*o.plan.width)
	}
	return w, nil
}

// zoneAdmit returns the compiled zone-map filter for a select, or nil when
// zone pruning cannot apply (no bounds, or disabled via NoZone).
func (e *Engine) zoneAdmit(cs *query.CompiledSelect) *query.ZoneFilter {
	if e.NoZone {
		return nil
	}
	return cs.Bounds.CompileZone()
}
