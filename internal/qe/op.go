// Physical operators: the Volcano-style batch-iterator layer of the
// planner split. The optimizer (plan.go) compiles a prepared statement into
// a tree of Operators; each operator's open starts its goroutines and
// returns its output stream, so the tree executes exactly like the paper's
// QET — every node running concurrently, batches flowing upward as soon as
// they are produced.
//
// Every operator carries an OpNode description (kind, chosen access path,
// cost and cardinality estimates) and, under EXPLAIN ANALYZE, an opStats
// block whose counters the operator updates while running — estimated
// versus actual rows side by side in the same tree.
package qe

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// OpActual is the measured side of EXPLAIN ANALYZE: what one physical
// operator actually did.
type OpActual struct {
	// RowsIn counts rows the operator consumed: records examined for
	// scans, child output rows for everything else.
	RowsIn int64 `json:"rows_in"`
	// RowsOut counts rows the operator emitted.
	RowsOut int64 `json:"rows_out"`
	// ElapsedMs is the wall time from the operator opening to its output
	// stream closing (operators run concurrently, so times overlap).
	ElapsedMs float64 `json:"elapsed_ms"`
	// BlocksSkipped counts containers a scan's kernel dismissed from block
	// headers alone (constant/dictionary/frame-of-reference key bounds that
	// cannot intersect the predicate) — no codes unpacked, no records read.
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
	// BytesDecoded is the encoded column-block bytes the kernel actually
	// materialized into key vectors — the measured side of the planner's
	// bytes-scanned cost estimate.
	BytesDecoded int64 `json:"bytes_decoded,omitempty"`
	// Workers counts the pool workers that touched this operator: scan
	// workers for a leaf, build partitions for a parallel hash build.
	Workers int64 `json:"workers,omitempty"`
	// Morsels is the number of (shard, container-run) work units a leaf
	// scan was chunked into; Steals counts how many of them a pool worker
	// took from another worker's queue.
	Morsels int64 `json:"morsels,omitempty"`
	Steals  int64 `json:"steals,omitempty"`
}

// OpNode is one node of the physical plan: the operator, its chosen access
// path, the optimizer's estimates, and (after EXPLAIN ANALYZE) the actuals.
type OpNode struct {
	// Op names the operator: scan, hash-join, neighbor-join, sort,
	// aggregate, limit, union, intersect, minus.
	Op    string `json:"op"`
	Table string `json:"table,omitempty"`
	// Access is the chosen access path of a scan: "htm-index",
	// "htm-index+zone", "zone-scan", "full-scan", or "empty" (provably
	// false predicate).
	Access string `json:"access,omitempty"`
	Filter string `json:"filter,omitempty"`
	// On is the join condition; BuildSide reports which input the hash
	// join materializes ("left" or "right" — the smaller estimate).
	On           string  `json:"on,omitempty"`
	BuildSide    string  `json:"build_side,omitempty"`
	RadiusArcmin float64 `json:"radius_arcmin,omitempty"`
	// PartitionDepth is the HTM depth of the neighbor join's spatial
	// partitions, chosen by the cost model (container depth, coarsened for
	// wide radii, deepened for dense build sides).
	PartitionDepth int    `json:"partition_depth,omitempty"`
	Agg            string `json:"agg,omitempty"`
	OrderBy        string `json:"order_by,omitempty"`
	Desc           bool   `json:"desc,omitempty"`
	Limit          int    `json:"limit,omitempty"`
	// Shards is a scan's scatter width; Containers its candidate container
	// count after coverage pruning, ZonePruned how many of those the zone
	// maps excluded.
	Shards     int `json:"shards,omitempty"`
	Containers int `json:"containers,omitempty"`
	ZonePruned int `json:"zone_pruned,omitempty"`
	// Kernel names a scan's record-evaluation path: "vector" (key-range
	// kernels are the whole predicate), "vector+pred" (kernels prefilter,
	// the row predicate re-checks survivors), or "row" (the legacy loop).
	Kernel string `json:"kernel,omitempty"`
	// EstRows is the optimizer's output-cardinality estimate; EstCost its
	// cost estimate in bytes scanned (encoded column-block bytes for kernel
	// scans, raw record bytes for row scans).
	EstRows float64 `json:"est_rows"`
	EstCost float64 `json:"est_cost"`
	// Actual carries the measured counters after EXPLAIN ANALYZE.
	Actual   *OpActual `json:"actual,omitempty"`
	Children []*OpNode `json:"children,omitempty"`
}

// opStats is the live counter block behind OpActual.
type opStats struct {
	rowsIn        atomic.Int64
	rowsOut       atomic.Int64
	blocksSkipped atomic.Int64
	bytesDecoded  atomic.Int64
	workers       atomic.Int64
	morsels       atomic.Int64
	steals        atomic.Int64
	startNs       atomic.Int64
	endNs         atomic.Int64
}

// markStart stamps the operator's open time (first caller wins — a scan
// opened once per shard stream still starts once).
func (s *opStats) markStart() {
	s.startNs.CompareAndSwap(0, time.Now().UnixNano())
}

// markEnd stamps stream close (last caller wins).
func (s *opStats) markEnd() {
	s.endNs.Store(time.Now().UnixNano())
}

// Operator is the physical-operator interface. open launches the
// operator's goroutines and returns its output stream; errors surface
// through rows like every other tree failure. describe snapshots the
// operator's plan node, including actual counters when instrumented.
type Operator interface {
	open(ctx context.Context, rows *Rows) <-chan Batch
	describe() *OpNode
}

// opBase carries the description, instrumentation, and children shared by
// every operator.
type opBase struct {
	info     OpNode
	stats    *opStats // nil when not running under ANALYZE
	children []Operator
}

// describe renders the operator subtree, attaching actuals when the
// operator ran instrumented. RowsIn defaults to the children's combined
// output when the operator did not count its own input (scans do).
func (b *opBase) describe() *OpNode {
	n := b.info
	n.Children = nil
	var childOut int64
	for _, c := range b.children {
		cn := c.describe()
		if cn.Actual != nil {
			childOut += cn.Actual.RowsOut
		}
		n.Children = append(n.Children, cn)
	}
	if b.stats != nil && b.stats.startNs.Load() > 0 {
		act := &OpActual{
			RowsIn:        b.stats.rowsIn.Load(),
			RowsOut:       b.stats.rowsOut.Load(),
			BlocksSkipped: b.stats.blocksSkipped.Load(),
			BytesDecoded:  b.stats.bytesDecoded.Load(),
			Workers:       b.stats.workers.Load(),
			Morsels:       b.stats.morsels.Load(),
			Steals:        b.stats.steals.Load(),
		}
		if act.RowsIn == 0 {
			act.RowsIn = childOut
		}
		if end := b.stats.endNs.Load(); end > 0 {
			act.ElapsedMs = float64(end-b.stats.startNs.Load()) / 1e6
		}
		n.Actual = act
	}
	return &n
}

// instrument wraps an output stream with row counting when the operator
// runs under ANALYZE; otherwise the stream passes through untouched.
func (b *opBase) instrument(in <-chan Batch) <-chan Batch {
	if b.stats == nil {
		return in
	}
	b.stats.markStart()
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		defer b.stats.markEnd()
		for bt := range in {
			b.stats.rowsOut.Add(int64(len(bt)))
			out <- bt
		}
	}()
	return out
}

// renderOpNode writes one plan line per operator, indented by depth.
func renderOpNode(b *strings.Builder, n *OpNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(strings.ToUpper(n.Op))
	if n.Table != "" {
		fmt.Fprintf(b, " %s", n.Table)
	}
	if n.Access != "" {
		fmt.Fprintf(b, " VIA %s", n.Access)
	}
	if n.On != "" {
		fmt.Fprintf(b, " ON %s", n.On)
	}
	if n.BuildSide != "" {
		fmt.Fprintf(b, " BUILD %s", n.BuildSide)
	}
	if n.PartitionDepth > 0 {
		fmt.Fprintf(b, " DEPTH %d", n.PartitionDepth)
	}
	if n.Filter != "" {
		fmt.Fprintf(b, " WHERE %s", n.Filter)
	}
	if n.Agg != "" {
		fmt.Fprintf(b, " %s", strings.ToUpper(n.Agg))
	}
	if n.OrderBy != "" {
		fmt.Fprintf(b, " BY %s", n.OrderBy)
		if n.Desc {
			b.WriteString(" DESC")
		}
	}
	if n.Limit > 0 && n.Op == "limit" {
		fmt.Fprintf(b, " %d", n.Limit)
	}
	if n.Shards > 0 {
		fmt.Fprintf(b, " [shards=%d containers=%d zone_pruned=%d]", n.Shards, n.Containers, n.ZonePruned)
	}
	if n.Kernel != "" {
		fmt.Fprintf(b, " KERNEL %s", n.Kernel)
	}
	fmt.Fprintf(b, " (est_rows=%.0f est_cost=%.0f", n.EstRows, n.EstCost)
	if n.Actual != nil {
		fmt.Fprintf(b, " actual_rows=%d rows_in=%d elapsed=%.2fms",
			n.Actual.RowsOut, n.Actual.RowsIn, n.Actual.ElapsedMs)
		if n.Actual.BlocksSkipped > 0 || n.Actual.BytesDecoded > 0 {
			fmt.Fprintf(b, " blocks_skipped=%d bytes_decoded=%d",
				n.Actual.BlocksSkipped, n.Actual.BytesDecoded)
		}
		if n.Actual.Morsels > 0 {
			fmt.Fprintf(b, " workers=%d morsels=%d steals=%d",
				n.Actual.Workers, n.Actual.Morsels, n.Actual.Steals)
		} else if n.Actual.Workers > 0 {
			fmt.Fprintf(b, " workers=%d", n.Actual.Workers)
		}
	}
	b.WriteString(")\n")
	for _, c := range n.Children {
		renderOpNode(b, c, depth+1)
	}
}
