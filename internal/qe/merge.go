// Shard-aware gather stages of the scatter-gather executor. A leaf scan
// operator fans out across the morsel pool (scanOp in plan.go); unordered
// consumers gather through the scan's own MPSC stream, so the only gather
// stages left here are the order- and aggregate-sensitive ones:
//
//   - runSortShard + runMergeOrdered implement distributed ORDER BY: each
//     shard sorts its own results by (key, objid), then an ordered k-way
//     merge produces one globally sorted stream. The (key, objid) total
//     order makes the merged output deterministic and identical to a
//     single-shard sort of the same rows; exact duplicates are taken from
//     the lowest shard index first (merge stability).
//   - runAggregate folds a single (join) stream into the one-row result;
//     leaf scans push the same fold onto the pool per container instead
//     (scanFold in morsel.go) and combine partials in container order:
//     COUNT/SUM/MIN/MAX compose directly, AVG composes via sum+count.

package qe

import (
	"context"
	"math"
	"sort"

	"sdss/internal/query"
)

// keyCompare is a three-way comparison of sort keys that is total even for
// NaN: NaN orders before every number and equal to itself, so per-shard
// sorts and the k-way merge agree on one global order no matter how NaN
// rows are distributed across slices.
func keyCompare(ka, kb float64) int {
	aNaN, bNaN := math.IsNaN(ka), math.IsNaN(kb)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return 1
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	default:
		return 0
	}
}

// sortLess orders two results by the hidden sort key at keyIdx, breaking
// key ties (including NaN-vs-NaN) by ObjID, and ObjID ties by the full
// value row. Single-table rows have unique ObjIDs, but join rows inherit
// the left row's ObjID — one probe row matching several build rows with
// tied sort keys would otherwise sort in nondeterministic arrival order.
// Comparing the remaining values keeps the order total and
// shard-independent for those too (rows tying on every value are
// interchangeable).
func sortLess(a, b *Result, keyIdx int, desc bool) bool {
	if c := keyCompare(a.Values[keyIdx], b.Values[keyIdx]); c != 0 {
		if desc {
			return c > 0
		}
		return c < 0
	}
	if a.ObjID != b.ObjID {
		return a.ObjID < b.ObjID
	}
	for i := range a.Values {
		if c := keyCompare(a.Values[i], b.Values[i]); c != 0 {
			return c < 0
		}
	}
	return false
}

// runSortShard drains one input stream (a sort node "must be complete
// before results can be sent further up the tree") and re-emits it ordered
// by (sort key, objid), the key living at keyIdx of each row's values. The
// hidden sort key stays appended to each row for the downstream k-way
// merge; runMergeOrdered strips it.
func (e *Engine) runSortShard(ctx context.Context, keyIdx int, desc bool, in <-chan Batch, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		var all []Result
		for b := range in {
			all = append(all, b...)
			RecycleBatch(b)
		}
		sort.Slice(all, func(i, j int) bool {
			return sortLess(&all[i], &all[j], keyIdx, desc)
		})
		bs := e.batchSize()
		for start := 0; start < len(all); start += bs {
			end := start + bs
			if end > len(all) {
				end = len(all)
			}
			// Re-batch through the pool (a copy, not a window over `all`)
			// so downstream recycling keeps the one-owner-per-buffer rule.
			b := append(getBatch(bs), all[start:end]...)
			select {
			case out <- b:
			case <-ctx.Done():
				rows.interrupted.Store(true)
				RecycleBatch(b)
				return
			}
		}
	}()
	return out
}

// mergeCursor is one shard's position in the k-way merge.
type mergeCursor struct {
	shard int
	ch    <-chan Batch
	batch Batch
	pos   int
}

// head returns the cursor's current result.
func (c *mergeCursor) head() *Result { return &c.batch[c.pos] }

// advance moves past the current result, pulling the next batch when the
// current one is exhausted (and recycling the spent buffer — the merge
// copies results out before emitting). It reports false when the stream is
// done.
func (c *mergeCursor) advance() bool {
	c.pos++
	for c.pos >= len(c.batch) {
		b, ok := <-c.ch
		if !ok {
			return false
		}
		RecycleBatch(c.batch)
		c.batch, c.pos = b, 0
	}
	return true
}

// runMergeOrdered k-way merges per-shard sorted streams into one globally
// sorted stream, strips the hidden sort key at keyIdx, and re-batches. Ties
// on (key, objid) — exact duplicates — are emitted lowest shard first,
// keeping the merge stable and deterministic.
func (e *Engine) runMergeOrdered(ctx context.Context, keyIdx int, desc bool, ins []<-chan Batch, rows *Rows) <-chan Batch {
	out := make(chan Batch, 4)
	go func() {
		defer close(out)
		// Prime one cursor per shard stream; empty shards drop out here.
		var cursors []*mergeCursor
		for i, in := range ins {
			c := &mergeCursor{shard: i, ch: in, pos: -1}
			if c.advance() {
				cursors = append(cursors, c)
			}
		}
		batch := getBatch(e.batchSize())
		emit := func() bool {
			if len(batch) == 0 {
				return true
			}
			select {
			case out <- batch:
				batch = getBatch(e.batchSize())
				return true
			case <-ctx.Done():
				rows.interrupted.Store(true)
				RecycleBatch(batch)
				batch = nil
				return false
			}
		}
		drain := func() {
			for _, c := range cursors {
				for b := range c.ch {
					RecycleBatch(b)
				}
			}
		}
		for len(cursors) > 0 {
			if ctx.Err() != nil {
				rows.interrupted.Store(true)
				drain()
				return
			}
			// Pick the smallest head; linear scan — shard counts are small
			// and cursors are slice-ordered, so equal heads resolve to the
			// lowest shard index.
			best := 0
			for i := 1; i < len(cursors); i++ {
				if sortLess(cursors[i].head(), cursors[best].head(), keyIdx, desc) {
					best = i
				}
			}
			r := *cursors[best].head()
			r.Values = r.Values[:keyIdx] // strip the hidden sort key
			batch = append(batch, r)
			if len(batch) >= e.batchSize() {
				if !emit() {
					drain()
					return
				}
			}
			if !cursors[best].advance() {
				cursors = append(cursors[:best], cursors[best+1:]...)
			}
		}
		emit()
		RecycleBatch(batch) // the trailing (empty or undelivered) buffer
	}()
	return out
}

// aggPartial is one shard's partial aggregate: enough state to compose any
// of the five aggregate functions (AVG recombines as sum/count).
type aggPartial struct {
	count    int64
	sum      float64
	min, max float64
	any      bool // min/max are meaningful
}

// combine folds another partial in.
func (p *aggPartial) combine(q aggPartial) {
	p.count += q.count
	p.sum += q.sum
	// The worker fold never records a NaN min/max, but guard anyway: a NaN
	// would win or lose every comparison below depending on operand order,
	// making the aggregate depend on shard arrival order.
	if q.any && !math.IsNaN(q.min) && !math.IsNaN(q.max) {
		if !p.any || q.min < p.min {
			p.min = q.min
		}
		if !p.any || q.max > p.max {
			p.max = q.max
		}
		p.any = true
	}
}

// fold absorbs one result row. The non-count aggregate operand is the
// hidden last value of the row.
func (p *aggPartial) fold(agg query.AggFunc, r *Result) {
	p.count++
	if agg == query.AggCount {
		return
	}
	v := r.Values[len(r.Values)-1] // hidden agg operand
	p.sum += v
	if math.IsNaN(v) {
		// Unmeasured magnitude: every comparison against it is false, so
		// folding it into min/max would leave the result dependent on
		// arrival order. SUM/AVG still absorb it (NaN poisons them
		// uniformly).
		return
	}
	if !p.any || v < p.min {
		p.min = v
	}
	if !p.any || v > p.max {
		p.max = v
	}
	p.any = true
}

// final extracts the aggregate's answer from a (combined) partial.
func (p *aggPartial) final(agg query.AggFunc) float64 {
	switch agg {
	case query.AggCount:
		return float64(p.count)
	case query.AggSum:
		return p.sum
	case query.AggAvg:
		if p.count > 0 {
			return p.sum / float64(p.count)
		}
		return 0
	case query.AggMin:
		return p.min
	case query.AggMax:
		return p.max
	}
	return 0
}

// runAggregate folds one input stream into the single result row — the
// non-leaf aggregate path (a join input). Aggregation is inherently
// blocking: the input must finish before the row exists.
func (e *Engine) runAggregate(ctx context.Context, agg query.AggFunc, in <-chan Batch, rows *Rows) <-chan Batch {
	out := make(chan Batch, 1)
	go func() {
		defer close(out)
		var p aggPartial
		for b := range in {
			for i := range b {
				p.fold(agg, &b[i])
			}
			RecycleBatch(b)
		}
		select {
		case out <- Batch{{Values: []float64{p.final(agg)}}}:
		case <-ctx.Done():
			rows.interrupted.Store(true)
		}
	}()
	return out
}
