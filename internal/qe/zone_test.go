package qe

import (
	"context"
	"fmt"
	"math"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/load"
	"sdss/internal/query"
	"sdss/internal/store"
)

// baselineEngine clones an engine into the pre-zone-map configuration: no
// HTM pruning, no zone pruning, full-struct decode. Its results are the
// ground truth zone-pruned scans must reproduce exactly.
func baselineEngine(e *Engine) *Engine {
	b := e.Clone()
	b.NoIndex = true
	b.NoZone = true
	b.FullDecode = true
	return b
}

// sameResultsExact compares two result sets bit-exactly (NaN == NaN).
func sameResultsExact(a, b []Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ObjID != b[i].ObjID {
			return fmt.Errorf("row %d: objid %d vs %d", i, a[i].ObjID, b[i].ObjID)
		}
		if len(a[i].Values) != len(b[i].Values) {
			return fmt.Errorf("row %d: widths %d vs %d", i, len(a[i].Values), len(b[i].Values))
		}
		for j := range a[i].Values {
			x, y := a[i].Values[j], b[i].Values[j]
			if math.Float64bits(x) != math.Float64bits(y) {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, x, y)
			}
		}
	}
	return nil
}

// zonePropertyQueries is the seeded conformance grid: every shape the
// bounds analyzer handles, plus shapes it must leave alone.
var zonePropertyQueries = []string{
	"SELECT objid, r FROM tag WHERE r < 18",
	"SELECT objid, r FROM tag WHERE r < 21.5",
	"SELECT objid FROM tag WHERE NOT (r < 20)",
	"SELECT objid, g FROM tag WHERE r >= 14 AND r <= 15",
	"SELECT objid FROM tag WHERE r < 15 OR r > 21",
	"SELECT objid FROM tag WHERE class = 'GALAXY' AND r < 20",
	"SELECT objid FROM tag WHERE class = 'QSO'",
	"SELECT objid FROM tag WHERE u - g > 1 AND r < 20",
	"SELECT objid, r FROM tag WHERE r < -5",         // provably empty
	"SELECT objid FROM tag WHERE r < 18 AND r > 21", // provably empty
	"SELECT COUNT(*) FROM tag WHERE r < 19",
	"SELECT MIN(r) FROM tag WHERE r > 16",
	"SELECT objid, r FROM tag WHERE r < 20 ORDER BY r LIMIT 50",
	"SELECT objid, r FROM photoobj WHERE r < 18",
	"SELECT objid FROM photoobj WHERE run = 2 AND camcol = 3",
	"SELECT objid FROM photoobj WHERE NOT (petrorad < 3)",
	"SELECT objid FROM specobj WHERE redshift > 0.5 AND sn > 10",
}

// TestZonePruningConservative is the acceptance property: zone-pruned,
// selectively decoded results are identical to a NoIndex full scan with
// full-struct decodes, across the seeded query grid, on 1 and 3 shards.
func TestZonePruningConservative(t *testing.T) {
	for _, shards := range []int{1, 3} {
		e := testShardArchive(t, 6000, 7, shards)
		base := baselineEngine(e)
		for _, q := range zonePropertyQueries {
			got := mustCollect(t, e, q)
			want := mustCollect(t, base, q)
			canonical(got)
			canonical(want)
			if err := sameResultsExact(got, want); err != nil {
				t.Errorf("shards=%d %q: %v", shards, q, err)
			}
		}
	}
}

// testShardArchive mirrors testArchive with a shard count.
func testShardArchive(t testing.TB, n int, seed int64, shards int) *Engine {
	t.Helper()
	e, _ := shardedArchive(t, n, seed, shards)
	return e
}

// spatialZoneQueries mix spatial predicates with scalar bounds; both prunes
// must compose without losing rows.
func TestZonePlusSpatialPruning(t *testing.T) {
	e, photo, _ := testArchive(t, 5000, 9)
	base := baselineEngine(e)
	c := &photo[42]
	queries := []string{
		fmt.Sprintf("SELECT objid, r FROM tag WHERE CIRCLE(%v, %v, 45) AND r < 20", c.RA, c.Dec),
		fmt.Sprintf("SELECT objid FROM tag WHERE CIRCLE(%v, %v, 30) AND NOT (r < 19)", c.RA, c.Dec),
		fmt.Sprintf("SELECT objid FROM photoobj WHERE CIRCLE(%v, %v, 60) AND r < 18 AND class = 'STAR'", c.RA, c.Dec),
	}
	for _, q := range queries {
		got := mustCollect(t, e, q)
		want := mustCollect(t, base, q)
		canonical(got)
		canonical(want)
		if err := sameResultsExact(got, want); err != nil {
			t.Errorf("%q: %v", q, err)
		}
	}
}

// nanArchive loads tag records whose r magnitude is NaN for a slice of
// objects, exercising zone NaN-presence tracking end to end.
func nanArchive(t testing.TB) (*Engine, int, int) {
	t.Helper()
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	nan := 0
	recs := make([]store.Record, 0, n)
	for i := 0; i < n; i++ {
		var p catalog.PhotoObj
		p.ObjID = catalog.ObjID(i + 1)
		if err := p.SetPos(float64(i%360)+0.5, float64(i%120)-60+0.25); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < catalog.NumBands; b++ {
			p.Mag[b] = float32(14 + (i*7%90)/10)
		}
		if i%5 == 0 {
			p.Mag[catalog.R] = float32(math.NaN())
			nan++
		}
		tag := catalog.MakeTag(&p)
		recs = append(recs, store.Record{HTMID: tag.HTMID, Data: tag.AppendTo(nil)})
	}
	if err := tgt.Tag.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	tgt.Sort()
	return &Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}, n, nan
}

func TestZoneNaNColumns(t *testing.T) {
	e, n, nan := nanArchive(t)
	base := baselineEngine(e)

	// NaN rows never satisfy a plain comparison...
	got := mustCollect(t, e, "SELECT objid FROM tag WHERE r < 100")
	if len(got) != n-nan {
		t.Errorf("r < 100 returned %d rows, want %d (NaN rows excluded)", len(got), n-nan)
	}
	// ...and always satisfy its negation.
	got = mustCollect(t, e, "SELECT objid, r FROM tag WHERE NOT (r < 100)")
	if len(got) != nan {
		t.Errorf("NOT (r < 100) returned %d rows, want %d (the NaN rows)", len(got), nan)
	}
	for _, r := range got {
		if !math.IsNaN(r.Values[1]) {
			t.Fatalf("non-NaN row %d leaked through NOT", r.ObjID)
		}
	}
	// The full grid agrees with the baseline on the NaN-bearing store.
	for _, q := range []string{
		"SELECT objid, r FROM tag WHERE r < 17",
		"SELECT objid FROM tag WHERE NOT (r < 17)",
		"SELECT objid FROM tag WHERE NOT (r < 17) AND NOT (r > 30)",
		"SELECT COUNT(*) FROM tag WHERE r >= 14",
	} {
		a := mustCollect(t, e, q)
		b := mustCollect(t, base, q)
		canonical(a)
		canonical(b)
		if err := sameResultsExact(a, b); err != nil {
			t.Errorf("%q: %v", q, err)
		}
	}
}

// TestAlwaysFalsePredicateTouchesNothing verifies the Never short-circuit:
// the scan reports zero scanned containers and returns empty.
func TestAlwaysFalsePredicateTouchesNothing(t *testing.T) {
	e, _, _ := testArchive(t, 3000, 5)
	prep, err := query.PrepareString("SELECT objid FROM tag WHERE r < 18 AND r > 21")
	if err != nil {
		t.Fatal(err)
	}
	fo, err := e.Fanout(prep)
	if err != nil {
		t.Fatal(err)
	}
	if len(fo) != 1 {
		t.Fatalf("fanout entries = %d", len(fo))
	}
	if fo[0].ContainersScanned != 0 {
		t.Errorf("containers_scanned = %d, want 0", fo[0].ContainersScanned)
	}
	if fo[0].ZonePruned != fo[0].ContainersTotal || fo[0].ContainersTotal == 0 {
		t.Errorf("zone_pruned = %d of %d candidates, want all", fo[0].ZonePruned, fo[0].ContainersTotal)
	}
	res := mustCollect(t, e, "SELECT objid FROM tag WHERE r < 18 AND r > 21")
	if len(res) != 0 {
		t.Errorf("always-false predicate returned %d rows", len(res))
	}
}

// TestFanoutZonePruning checks that a selective cut reports pruned
// containers on a store whose zones can separate it (the run attribute is
// spatially clustered by construction of the drift-scan generator).
func TestFanoutZonePruning(t *testing.T) {
	e, _, _ := testArchive(t, 4000, 3)
	prep, err := query.PrepareString("SELECT objid FROM photoobj WHERE mjd < 0")
	if err != nil {
		t.Fatal(err)
	}
	fo, err := e.Fanout(prep)
	if err != nil {
		t.Fatal(err)
	}
	// mjd is always positive in the generator: every candidate prunes.
	if fo[0].ZonePruned != fo[0].ContainersTotal {
		t.Errorf("mjd < 0 pruned %d of %d", fo[0].ZonePruned, fo[0].ContainersTotal)
	}
	// NoZone restores the full scan.
	ez := e.Clone()
	ez.NoZone = true
	fo, err = ez.Fanout(prep)
	if err != nil {
		t.Fatal(err)
	}
	if fo[0].ZonePruned != 0 || fo[0].ContainersScanned != fo[0].ContainersTotal {
		t.Errorf("NoZone fanout still prunes: %+v", fo[0])
	}
}

// TestScanSteadyStateAllocs is the satellite guarantee: with batch buffers
// pooled and Values carved from per-batch backing arrays, the per-record
// scan path allocates (amortized) ~nothing.
func TestScanSteadyStateAllocs(t *testing.T) {
	e, photo, _ := testArchive(t, 8000, 11)
	e.Workers = 2
	q := "SELECT objid, r FROM tag WHERE r < 30" // matches everything
	// Warm the pool and count rows once.
	rows := len(mustCollect(t, e, q))
	if rows < len(photo)/2 {
		t.Fatalf("unexpected row count %d", rows)
	}
	avg := testing.AllocsPerRun(5, func() {
		rs, err := e.ExecuteString(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for b := range rs.C {
			RecycleBatch(b)
		}
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
	})
	perRecord := avg / float64(rows)
	// Budget: one Values backing array per 256-row batch plus fixed
	// per-query setup, spread over thousands of records.
	if perRecord > 0.25 {
		t.Errorf("steady-state allocs = %.3f per record (%.0f per query), want ~0", perRecord, avg)
	}
}

// Decode micro-benchmarks: the selective offset-based path versus the
// full-struct decode, per record, for both the wide photo rows and the
// compact tag rows. The benchmarked work is reset + predicate-shaped reads
// (r magnitude) + identity, the inner loop of a magnitude-cut scan.
func benchRecords(b *testing.B, table query.Table) [][]byte {
	b.Helper()
	e, photo, _ := testArchive(b, 512, 21)
	_ = e
	recs := make([][]byte, 0, len(photo))
	for i := range photo {
		switch table {
		case query.TablePhoto:
			recs = append(recs, photo[i].AppendTo(nil))
		case query.TableTag:
			tag := catalog.MakeTag(&photo[i])
			recs = append(recs, tag.AppendTo(nil))
		}
	}
	return recs
}

func benchmarkDecode(b *testing.B, table query.Table, full bool) {
	recs := benchRecords(b, table)
	e := &Engine{FullDecode: full}
	acc, err := e.newAccessor(table)
	if err != nil {
		b.Fatal(err)
	}
	get := acc.getter()
	attr := query.TagR
	if table == query.TablePhoto {
		attr = query.PhotoR
	}
	b.SetBytes(int64(len(recs[0])))
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		rec := recs[i%len(recs)]
		if err := acc.reset(rec); err != nil {
			b.Fatal(err)
		}
		sink += get(attr)
		_ = acc.objID()
	}
	_ = sink
}

func BenchmarkSelectiveDecode(b *testing.B) {
	b.Run("photo", func(b *testing.B) { benchmarkDecode(b, query.TablePhoto, false) })
	b.Run("tag", func(b *testing.B) { benchmarkDecode(b, query.TableTag, false) })
}

func BenchmarkFullDecode(b *testing.B) {
	b.Run("photo", func(b *testing.B) { benchmarkDecode(b, query.TablePhoto, true) })
	b.Run("tag", func(b *testing.B) { benchmarkDecode(b, query.TableTag, true) })
}
