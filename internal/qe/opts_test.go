package qe

import (
	"context"
	"testing"
	"time"

	"sdss/internal/query"
)

func TestRowsColumns(t *testing.T) {
	e, _, _ := testArchive(t, 500, 7)
	rows, err := e.ExecuteString(context.Background(), "SELECT objid, ra, dec, r FROM tag WHERE r < 20")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	want := []query.Column{
		{Name: "objid", Type: query.TypeID},
		{Name: "ra", Type: query.TypeFloat},
		{Name: "dec", Type: query.TypeFloat},
		{Name: "r", Type: query.TypeFloat},
	}
	if len(cols) != len(want) {
		t.Fatalf("got %d columns, want %d", len(cols), len(want))
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Errorf("column %d = %+v, want %+v", i, cols[i], want[i])
		}
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if len(r.Values) != len(cols) {
			t.Fatalf("row has %d values for %d columns", len(r.Values), len(cols))
		}
	}
}

func TestAggregateColumns(t *testing.T) {
	e, _, _ := testArchive(t, 500, 7)
	rows, err := e.ExecuteString(context.Background(), "SELECT COUNT(*) FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	if len(cols) != 1 || cols[0].Name != "count(*)" || cols[0].Type != query.TypeInt {
		t.Errorf("count columns = %+v", cols)
	}

	rows2, err := e.ExecuteString(context.Background(), "SELECT AVG(r) FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	if cols := rows2.Columns(); len(cols) != 1 || cols[0].Name != "avg(r)" {
		t.Errorf("avg columns = %+v", cols)
	}
}

func TestExecOptionsLimitTruncates(t *testing.T) {
	e, _, _ := testArchive(t, 2000, 3)
	rows, err := e.ExecuteStringOpts(context.Background(), "SELECT objid FROM tag", ExecOptions{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("limit delivered %d rows, want 10", len(res))
	}
	if !rows.Truncated() {
		t.Error("limited stream not marked truncated")
	}

	// A limit above the result size is not a truncation.
	rows2, err := e.ExecuteStringOpts(context.Background(), "SELECT objid FROM tag", ExecOptions{Limit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	all, err := rows2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no rows at all")
	}
	if rows2.Truncated() {
		t.Error("unlimited stream marked truncated")
	}
}

func TestExecOptionsOffset(t *testing.T) {
	e, _, _ := testArchive(t, 1000, 5)
	const q = "SELECT objid, r FROM tag ORDER BY r"
	full := mustCollect(t, e, q)
	if len(full) < 10 {
		t.Fatalf("only %d rows", len(full))
	}
	rows, err := e.ExecuteStringOpts(context.Background(), q, ExecOptions{Offset: 4, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	page, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 3 {
		t.Fatalf("page has %d rows, want 3", len(page))
	}
	for i, r := range page {
		if r.ObjID != full[i+4].ObjID {
			t.Errorf("page row %d = %d, want %d", i, r.ObjID, full[i+4].ObjID)
		}
	}
}

func TestExecOptionsTimeout(t *testing.T) {
	e, _, _ := testArchive(t, 2000, 9)
	rows, err := e.ExecuteStringOpts(context.Background(), "SELECT objid FROM photoobj", ExecOptions{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rows.Collect()
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestCloseIsIdempotentAndDrains(t *testing.T) {
	e, _, _ := testArchive(t, 2000, 11)
	rows, err := e.ExecuteString(context.Background(), "SELECT objid FROM photoobj")
	if err != nil {
		t.Fatal(err)
	}
	// Close immediately, before reading anything; it must not hang and a
	// second Close must be a no-op.
	done := make(chan struct{})
	go func() {
		rows.Close()
		rows.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	// After Close, C is closed and Err is clean (cancel is not an error).
	if _, ok := <-rows.C; ok {
		t.Error("C still delivering after Close")
	}
	if err := rows.Err(); err != nil {
		t.Errorf("Err after Close = %v", err)
	}
}

func TestCloseMidStream(t *testing.T) {
	e, _, _ := testArchive(t, 4000, 13)
	e.BatchSize = 8 // many batches so the producer outlives the first read
	rows, err := e.ExecuteString(context.Background(), "SELECT objid FROM photoobj")
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for b := range rows.C {
		got += len(b)
		RecycleBatch(b)
		if got > 16 {
			rows.Close() // must drain and stop the range loop promptly
		}
	}
	if err := rows.Err(); err != nil {
		t.Errorf("Err after mid-stream Close = %v", err)
	}
}
