package qe

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/load"
	"sdss/internal/query"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

// joinArchive loads a deterministic survey into an engine with the given
// shard count, returning the raw objects for nested-loop references.
func joinArchive(t testing.TB, n int, seed int64, shards int) (*Engine, []catalog.PhotoObj, []catalog.SpecObj) {
	t.Helper()
	photo, spec, err := skygen.GenerateAll(skygen.Default(seed, n), 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	tgt.Sort()
	return &Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}, photo, spec
}

// TestHashJoinMatchesNestedLoop is the join-correctness property test: the
// objid hash join must agree exactly with a nested-loop reference over the
// raw object arrays, across several random datasets.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		e, photo, spec := joinArchive(t, 2500, seed, 1)
		got := mustCollect(t, e,
			"SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 18")

		// Nested-loop reference.
		want := map[catalog.ObjID]float64{}
		for i := range photo {
			if !(photo[i].Mag[catalog.R] < 18) {
				continue
			}
			for j := range spec {
				if spec[j].ObjID == photo[i].ObjID {
					want[photo[i].ObjID] = float64(spec[j].Redshift)
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: hash join %d rows, nested loop %d", seed, len(got), len(want))
		}
		for _, r := range got {
			z, ok := want[r.ObjID]
			if !ok {
				t.Fatalf("seed %d: unexpected joined object %d", seed, r.ObjID)
			}
			if r.Values[1] != z {
				t.Fatalf("seed %d: object %d redshift %v, want %v", seed, r.ObjID, r.Values[1], z)
			}
			if r.Values[0] != float64(uint64(r.ObjID)) {
				t.Fatalf("seed %d: projected objid %v != row objid %d", seed, r.Values[0], r.ObjID)
			}
		}
	}
}

// TestJoinShardsBitIdentical pins the distributed property: the same join
// under ORDER BY must produce bit-identical streams on 1-shard and 8-shard
// archives.
func TestJoinShardsBitIdentical(t *testing.T) {
	const q = "SELECT p.objid, s.redshift, p.r FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 20 ORDER BY s.redshift DESC"
	e1, _, _ := joinArchive(t, 3000, 7, 1)
	e8, _, _ := joinArchive(t, 3000, 7, 8)
	r1 := mustCollect(t, e1, q)
	r8 := mustCollect(t, e8, q)
	if len(r1) == 0 {
		t.Fatal("empty join result")
	}
	if len(r1) != len(r8) {
		t.Fatalf("1 shard %d rows, 8 shards %d", len(r1), len(r8))
	}
	for i := range r1 {
		if r1[i].ObjID != r8[i].ObjID {
			t.Fatalf("row %d: objid %d vs %d", i, r1[i].ObjID, r8[i].ObjID)
		}
		for k := range r1[i].Values {
			if math.Float64bits(r1[i].Values[k]) != math.Float64bits(r8[i].Values[k]) {
				t.Fatalf("row %d col %d: %v vs %v (not bit-identical)",
					i, k, r1[i].Values[k], r8[i].Values[k])
			}
		}
	}
}

// TestJoinNaNKeysDropped pins SQL equality semantics for general float join
// keys: NaN keys match nothing — even though NaN bit patterns would
// hash-collide happily.
func TestJoinNaNKeysDropped(t *testing.T) {
	photo, spec, err := skygen.GenerateAll(skygen.Default(11, 400), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Give every spectrum's SN the r magnitude of its own object, so
	// ON p.r = s.sn matches exactly the spectra whose key is finite; then
	// poison half the pairs with NaN on both sides. A hash join that
	// matched NaN-to-NaN (bitwise) would emit those poisoned pairs.
	rOf := map[catalog.ObjID]float32{}
	for i := range photo {
		rOf[photo[i].ObjID] = photo[i].Mag[catalog.R]
	}
	nan := float32(math.NaN())
	poisoned := map[catalog.ObjID]bool{}
	for j := range spec {
		spec[j].SN = rOf[spec[j].ObjID]
		if j%2 == 1 {
			spec[j].SN = nan
			poisoned[spec[j].ObjID] = true
		}
	}
	for i := range photo {
		if poisoned[photo[i].ObjID] {
			photo[i].Mag[catalog.R] = nan
		}
	}
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	tgt.Sort()
	e := &Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}

	got := mustCollect(t, e, "SELECT p.objid FROM photoobj p JOIN specobj s ON p.r = s.sn")

	// Nested-loop reference under float ==, which is false for NaN.
	want := 0
	for i := range photo {
		for j := range spec {
			if float64(photo[i].Mag[catalog.R]) == float64(spec[j].SN) {
				want++
			}
		}
	}
	if want == 0 {
		t.Fatal("degenerate dataset: no finite-key matches")
	}
	if len(got) != want {
		t.Fatalf("join emitted %d rows, nested loop %d", len(got), want)
	}
	for _, r := range got {
		if poisoned[r.ObjID] && math.IsNaN(float64(rOf[r.ObjID])) {
			t.Fatalf("NaN-keyed object %d matched", r.ObjID)
		}
	}
}

// TestJoinResidualPredicate checks cross-table conjuncts that cannot push
// below the join: they must filter candidate pairs exactly as a nested
// loop would.
func TestJoinResidualPredicate(t *testing.T) {
	e, photo, spec := joinArchive(t, 2500, 5, 2)
	got := mustCollect(t, e,
		"SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.u - p.g > s.redshift")
	want := 0
	specByID := map[catalog.ObjID]*catalog.SpecObj{}
	for j := range spec {
		specByID[spec[j].ObjID] = &spec[j]
	}
	for i := range photo {
		s, ok := specByID[photo[i].ObjID]
		if !ok {
			continue
		}
		if float64(photo[i].Mag[catalog.U])-float64(photo[i].Mag[catalog.G]) > float64(s.Redshift) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("residual join %d rows, nested loop %d", len(got), want)
	}
}

// TestJoinResidualWholeRowTests: conjuncts mixing a whole-row test (which
// binds to the left table) with a right-side column cannot push down — they
// must evaluate as residuals, spatial against the left row's position and
// FLAG against the left row's flags, without missing projected inputs.
func TestJoinResidualWholeRowTests(t *testing.T) {
	e, photo, spec := joinArchive(t, 2500, 15, 2)
	specByID := map[catalog.ObjID]*catalog.SpecObj{}
	for j := range spec {
		specByID[spec[j].ObjID] = &spec[j]
	}

	c := &photo[0]
	q := fmt.Sprintf(
		"SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE CIRCLE(%v, %v, 120) OR s.sn > 5",
		c.RA, c.Dec)
	got := mustCollect(t, e, q)
	radius := 120 * sphere.Arcmin
	want := 0
	for i := range photo {
		s, ok := specByID[photo[i].ObjID]
		if !ok {
			continue
		}
		inCircle := sphere.CosDist(c.Pos(), photo[i].Pos()) >= math.Cos(radius)
		if inCircle || s.SN > 5 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("spatial-residual join %d rows, nested loop %d", len(got), want)
	}

	got = mustCollect(t, e,
		"SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE FLAG('BLENDED') OR s.sn > 8")
	want = 0
	for i := range photo {
		s, ok := specByID[photo[i].ObjID]
		if !ok {
			continue
		}
		if photo[i].Flags&catalog.FlagBlended != 0 || s.SN > 8 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("flag-residual join %d rows, nested loop %d", len(got), want)
	}
}

// TestSetOpOverJoinRejected: set operations match rows by ObjID, which
// cannot represent join pairs — the compiler must refuse instead of
// silently collapsing pairs.
func TestSetOpOverJoinRejected(t *testing.T) {
	bad := []string{
		"(SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 1)) UNION (SELECT objid, r FROM tag WHERE r < 14)",
		"(SELECT objid FROM tag) INTERSECT (SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.objid)",
	}
	for _, q := range bad {
		if _, err := query.PrepareString(q); err == nil {
			t.Errorf("PrepareString(%q) succeeded", q)
		}
	}
}

// TestJoinAggregateAndLimit covers aggregates and ORDER BY/LIMIT stacked on
// a join.
func TestJoinAggregateAndLimit(t *testing.T) {
	e, photo, spec := joinArchive(t, 2500, 6, 2)
	withSpec := map[catalog.ObjID]bool{}
	for j := range spec {
		withSpec[spec[j].ObjID] = true
	}
	want := 0
	for i := range photo {
		if photo[i].Mag[catalog.R] < 19 && withSpec[photo[i].ObjID] {
			want++
		}
	}
	res := mustCollect(t, e, "SELECT COUNT(*) FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 19")
	if len(res) != 1 || res[0].Values[0] != float64(want) {
		t.Fatalf("join COUNT(*) = %v, want %d", res[0].Values, want)
	}

	top := mustCollect(t, e, "SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid ORDER BY s.redshift DESC LIMIT 5")
	if len(top) > 5 {
		t.Fatalf("limit ignored: %d rows", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Values[1] > top[i-1].Values[1] {
			t.Fatal("not sorted descending by redshift")
		}
	}
}

// TestNeighborJoinMatchesNaive checks the spatial join against an all-pairs
// reference: a tag self-join deduplicated by objid ordering, and the
// bipartite photo×tag form, which must see each unordered pair twice.
func TestNeighborJoinMatchesNaive(t *testing.T) {
	const radiusArcmin = 4.0
	e, photo, _ := joinArchive(t, 2000, 9, 2)
	radius := radiusArcmin * sphere.Arcmin

	type pair struct{ a, b catalog.ObjID }
	want := map[pair]bool{}
	for i := range photo {
		for j := i + 1; j < len(photo); j++ {
			if sphere.CosDist(photo[i].Pos(), photo[j].Pos()) >= math.Cos(radius) {
				a, b := photo[i].ObjID, photo[j].ObjID
				if a > b {
					a, b = b, a
				}
				want[pair{a, b}] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate dataset: no close pairs at this radius")
	}

	q := fmt.Sprintf("SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, %g) WHERE a.objid < b.objid", radiusArcmin)
	got := mustCollect(t, e, q)
	if len(got) != len(want) {
		t.Fatalf("neighbor self-join %d pairs, brute force %d", len(got), len(want))
	}
	for _, r := range got {
		p := pair{catalog.ObjID(r.Values[0]), catalog.ObjID(r.Values[1])}
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}

	// Bipartite photo×tag: same geometry, both orientations, identity
	// pairs (the object meeting its own tag) excluded.
	q2 := fmt.Sprintf("SELECT p.objid, t.objid FROM NEIGHBORS(photoobj p, tag t, %g)", radiusArcmin)
	got2 := mustCollect(t, e, q2)
	if len(got2) != 2*len(want) {
		t.Fatalf("bipartite neighbor join %d rows, want %d (2× unordered pairs)", len(got2), 2*len(want))
	}
}

// TestNeighborJoinShardsConsistent: the spatial join must produce the same
// pair set regardless of shard count.
func TestNeighborJoinShardsConsistent(t *testing.T) {
	const q = "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 3) WHERE a.objid < b.objid ORDER BY a.objid"
	e1, _, _ := joinArchive(t, 2000, 10, 1)
	e8, _, _ := joinArchive(t, 2000, 10, 8)
	r1 := mustCollect(t, e1, q)
	r8 := mustCollect(t, e8, q)
	if len(r1) != len(r8) {
		t.Fatalf("1 shard %d pairs, 8 shards %d", len(r1), len(r8))
	}
	key := func(r Result) [2]uint64 { return [2]uint64{uint64(r.Values[0]), uint64(r.Values[1])} }
	s1 := make([][2]uint64, len(r1))
	s8 := make([][2]uint64, len(r8))
	for i := range r1 {
		s1[i], s8[i] = key(r1[i]), key(r8[i])
	}
	less := func(s [][2]uint64) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i][0] != s[j][0] {
				return s[i][0] < s[j][0]
			}
			return s[i][1] < s[j][1]
		}
	}
	sort.Slice(s1, less(s1))
	sort.Slice(s8, less(s8))
	for i := range s1 {
		if s1[i] != s8[i] {
			t.Fatalf("pair %d: %v vs %v", i, s1[i], s8[i])
		}
	}
}

// TestNeighborJoinHugeObjIDsExact: the each-pair-once idiom
// (WHERE a.objid < b.objid) must compare object identifiers exactly. IDs
// above 2^53 are indistinguishable as float64 — through the expression
// path both orderings of such a pair evaluate false and the pair vanishes.
func TestNeighborJoinHugeObjIDsExact(t *testing.T) {
	base := uint64(1) << 60 // float64 granularity here is 256
	var photo []catalog.PhotoObj
	for i := 0; i < 6; i++ {
		var p catalog.PhotoObj
		p.ObjID = catalog.ObjID(base + uint64(i))
		// Two tight groups of three, far apart: 3+3 pairs within 1'.
		ra := 180.0 + float64(i%3)*0.002
		if i >= 3 {
			ra += 90
		}
		if err := p.SetPos(ra, 10); err != nil {
			t.Fatal(err)
		}
		photo = append(photo, p)
	}
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo}); err != nil {
		t.Fatal(err)
	}
	tgt.Sort()
	e := &Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}
	got := mustCollect(t, e,
		"SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 1) WHERE a.objid < b.objid")
	if len(got) != 6 {
		t.Fatalf("each-pair-once join found %d pairs, want 6 (2 groups × 3 pairs)", len(got))
	}
	for _, r := range got {
		if uint64(r.ObjID) < base {
			t.Fatalf("unexpected objid %d", r.ObjID)
		}
	}
}

// TestNeighborJoinPropertyGrid is the partitioned-join property test: across
// random datasets, radii from well inside a partition trixel to several times
// the margin width, and 1-versus-8 shards, the HTM-partitioned join must
// produce exactly the brute-force all-pairs set. Radii near and beyond the
// margin width make boundary pairs (one object per partition) the common
// case, so any replication gap shows up as a missing pair.
func TestNeighborJoinPropertyGrid(t *testing.T) {
	type pair struct{ a, b catalog.ObjID }
	for seed := int64(21); seed <= 23; seed++ {
		e1, photo, _ := joinArchive(t, 1500, seed, 1)
		e8, _, _ := joinArchive(t, 1500, seed, 8)
		for _, radiusArcmin := range []float64{0.5, 3, 12} {
			radius := radiusArcmin * sphere.Arcmin
			cosR := math.Cos(radius)
			want := map[pair]bool{}
			for i := range photo {
				for j := i + 1; j < len(photo); j++ {
					if sphere.CosDist(photo[i].Pos(), photo[j].Pos()) >= cosR {
						a, b := photo[i].ObjID, photo[j].ObjID
						if a > b {
							a, b = b, a
						}
						want[pair{a, b}] = true
					}
				}
			}
			q := fmt.Sprintf(
				"SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, %g) WHERE a.objid < b.objid",
				radiusArcmin)
			for shards, e := range map[int]*Engine{1: e1, 8: e8} {
				got := mustCollect(t, e, q)
				if len(got) != len(want) {
					t.Fatalf("seed %d radius %g' shards %d: join %d pairs, brute force %d",
						seed, radiusArcmin, shards, len(got), len(want))
				}
				for _, r := range got {
					p := pair{catalog.ObjID(r.Values[0]), catalog.ObjID(r.Values[1])}
					if !want[p] {
						t.Fatalf("seed %d radius %g' shards %d: unexpected pair %v",
							seed, radiusArcmin, shards, p)
					}
				}
			}
		}
	}
}

// TestNeighborJoinPolesAndWraparound runs the spatial join through the engine
// on the sky's coordinate singularities: a tight triple around each celestial
// pole (where RA degenerates) and a pair straddling the RA 0/360 seam, plus a
// control object pairing with nothing. Cartesian geometry must see 7 pairs no
// matter how the containers split them.
func TestNeighborJoinPolesAndWraparound(t *testing.T) {
	fixtures := []struct{ ra, dec float64 }{
		{0, 89.99}, {120, 89.99}, {240, 89.99}, // north polar triple
		{0, -89.99}, {120, -89.99}, {240, -89.99}, // south polar triple
		{359.99, 0}, {0.01, 0}, // RA-wraparound pair
		{180, 45}, // control: no neighbor within 2'
	}
	var photo []catalog.PhotoObj
	for i, f := range fixtures {
		var p catalog.PhotoObj
		p.ObjID = catalog.ObjID(i + 1)
		if err := p.SetPos(f.ra, f.dec); err != nil {
			t.Fatal(err)
		}
		photo = append(photo, p)
	}
	const q = "SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 2) WHERE a.objid < b.objid"
	for _, shards := range []int{1, 8} {
		tgt, err := load.NewTarget("", 0, shards)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo}); err != nil {
			t.Fatal(err)
		}
		tgt.Sort()
		e := &Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}
		got := mustCollect(t, e, q)
		if len(got) != 7 {
			t.Fatalf("shards %d: polar/wraparound join found %d pairs, want 7 (3+3 polar, 1 seam)",
				shards, len(got))
		}
		for _, r := range got {
			if r.Values[0] == 9 || r.Values[1] == 9 {
				t.Fatalf("shards %d: control object paired: %v", shards, r.Values)
			}
		}
	}
}

// TestNeighborJoinCancellation closes a spatial-join stream mid-production:
// Close must return (no leaked probe or build goroutines — it blocks on the
// tree), and the stream must be marked interrupted so a timeout wrapper can
// tell a cut-short join from a completed one.
func TestNeighborJoinCancellation(t *testing.T) {
	e, _, _ := joinArchive(t, 2000, 16, 2)
	// A tiny batch size forces many channel sends, so the join is still
	// producing when the first batch arrives.
	e.BatchSize = 4
	prep, err := query.PrepareString(
		"SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, 30) WHERE a.objid < b.objid")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.Execute(context.Background(), prep)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := <-rows.C; ok {
		RecycleBatch(b)
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		t.Fatalf("cancelled join reported error: %v", err)
	}
	if !rows.interrupted.Load() {
		t.Fatal("cancelled mid-stream but not marked interrupted")
	}
}

// TestNeighborJoinEstimateAccuracy pins the pair-density estimator: the
// planner's est_rows for the spatial self-join must land within 4× of the
// actual pair count (the cost model only needs the right order of magnitude,
// but the old constant-selectivity guess was off by 400×).
func TestNeighborJoinEstimateAccuracy(t *testing.T) {
	e, _, _ := joinArchive(t, 8000, 17, 1)
	for _, radiusArcmin := range []float64{0.5, 2} {
		q := fmt.Sprintf(
			"SELECT a.objid, b.objid FROM NEIGHBORS(tag a, tag b, %g) WHERE a.objid < b.objid",
			radiusArcmin)
		prep, err := query.PrepareString(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := e.Plan(prep)
		if err != nil {
			t.Fatal(err)
		}
		node := plan.Describe()
		if node.Op != "neighbor-join" {
			t.Fatalf("radius %g': root op = %q", radiusArcmin, node.Op)
		}
		actual := len(mustCollect(t, e, q))
		if actual == 0 {
			t.Fatalf("radius %g': degenerate dataset, no pairs", radiusArcmin)
		}
		ratio := node.EstRows / float64(actual)
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("radius %g': est_rows %g vs actual %d (ratio %.2f, want within 4×)",
				radiusArcmin, node.EstRows, actual, ratio)
		}
	}
}

// TestJoinColumnsQualified pins the join result schema: qualified canonical
// names, types flowing from each side's table, and the acceptance query's
// "s.z" spelling resolving to the spec redshift.
func TestJoinColumnsQualified(t *testing.T) {
	e, photo, spec := joinArchive(t, 2000, 14, 1)
	prep, err := query.PrepareString("SELECT p.objid, s.z FROM photo p JOIN spec s ON p.objid = s.objid WHERE p.r < 18")
	if err != nil {
		t.Fatal(err)
	}
	cols := prep.Columns()
	if len(cols) != 2 {
		t.Fatalf("columns = %+v", cols)
	}
	if cols[0].Name != "p.objid" || cols[0].Type != query.TypeID {
		t.Errorf("col 0 = %+v", cols[0])
	}
	if cols[1].Name != "s.redshift" || cols[1].Type != query.TypeFloat {
		t.Errorf("col 1 = %+v (s.z must resolve to spec redshift)", cols[1])
	}
	rows, err := e.Execute(context.Background(), prep)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	bright := map[catalog.ObjID]bool{}
	for i := range photo {
		if photo[i].Mag[catalog.R] < 18 {
			bright[photo[i].ObjID] = true
		}
	}
	for j := range spec {
		if bright[spec[j].ObjID] {
			want++
		}
	}
	if len(res) != want {
		t.Fatalf("acceptance query returned %d rows, want %d", len(res), want)
	}
}

// TestJoinAnalyzeCounters runs a join under EXPLAIN ANALYZE and checks the
// physical plan carries estimates and matching actual counters.
func TestJoinAnalyzeCounters(t *testing.T) {
	e, _, _ := joinArchive(t, 2500, 12, 2)
	prep, err := query.PrepareString(
		"SELECT p.objid, s.redshift FROM photoobj p JOIN specobj s ON p.objid = s.objid WHERE p.r < 19")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.PlanAnalyze(prep, true)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.ExecutePlan(context.Background(), plan, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	node := plan.Describe()
	if node.Op != "hash-join" {
		t.Fatalf("root op = %q", node.Op)
	}
	if node.BuildSide == "" || node.On == "" {
		t.Errorf("join node missing build side/on: %+v", node)
	}
	if node.Actual == nil {
		t.Fatal("no actuals after ANALYZE")
	}
	if node.Actual.RowsOut != int64(len(res)) {
		t.Errorf("root actual rows %d, collected %d", node.Actual.RowsOut, len(res))
	}
	if len(node.Children) != 2 {
		t.Fatalf("join has %d children", len(node.Children))
	}
	for _, c := range node.Children {
		if c.Op != "scan" {
			t.Errorf("child op = %q", c.Op)
		}
		if c.Actual == nil {
			t.Fatal("scan child has no actuals")
		}
		if c.Actual.RowsIn <= 0 {
			t.Errorf("scan %s examined %d records", c.Table, c.Actual.RowsIn)
		}
		if c.Access == "" {
			t.Errorf("scan %s has no access path", c.Table)
		}
		if c.EstCost <= 0 {
			t.Errorf("scan %s has no cost estimate", c.Table)
		}
	}
	// The build side must be the child with the smaller cardinality
	// estimate.
	smaller := "left"
	if node.Children[1].EstRows < node.Children[0].EstRows {
		smaller = "right"
	}
	if node.BuildSide != smaller {
		t.Errorf("build side %q, but %q has the smaller estimate (%g vs %g)",
			node.BuildSide, smaller, node.Children[0].EstRows, node.Children[1].EstRows)
	}

	// An unfiltered probe-side join must build on spec — the far smaller
	// table.
	prep2, err := query.PrepareString("SELECT p.objid FROM photoobj p JOIN specobj s ON p.objid = s.objid")
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := e.Plan(prep2)
	if err != nil {
		t.Fatal(err)
	}
	if n := plan2.Describe(); n.BuildSide != "right" {
		t.Errorf("unfiltered join build side = %q, want right (spec is smaller)", n.BuildSide)
	}
}

// TestPlanAccessPaths pins the cost-based access path choice: a tight cone
// keeps the HTM path, a predicate-free whole-table scan is a full scan, and
// a provably false predicate plans as empty.
func TestPlanAccessPaths(t *testing.T) {
	e, photo, _ := joinArchive(t, 3000, 13, 1)
	planOf := func(q string) *OpNode {
		prep, err := query.PrepareString(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := e.Plan(prep)
		if err != nil {
			t.Fatal(err)
		}
		return plan.Describe()
	}
	cone := planOf(fmt.Sprintf("SELECT objid FROM photoobj WHERE CIRCLE(%v, %v, 10)", photo[0].RA, photo[0].Dec))
	if cone.Access != "htm-index" {
		t.Errorf("tight cone access = %q, want htm-index", cone.Access)
	}
	full := planOf("SELECT objid FROM photoobj")
	if full.Access != "full-scan" {
		t.Errorf("whole-table access = %q, want full-scan", full.Access)
	}
	zone := planOf("SELECT objid FROM photoobj WHERE r < 14")
	if zone.Access != "zone-scan" {
		t.Errorf("magnitude cut access = %q, want zone-scan", zone.Access)
	}
	empty := planOf("SELECT objid FROM photoobj WHERE r < 18 AND r > 21")
	if empty.Access != "empty" {
		t.Errorf("contradiction access = %q, want empty", empty.Access)
	}
	// A nearly whole-sky cone crosses the index-versus-scan crossover: the
	// planner must drop the per-record fine filter.
	wide := planOf("SELECT objid FROM photoobj WHERE CIRCLE(180, 0, 10000)")
	if wide.Access == "htm-index" {
		t.Errorf("whole-sky cone kept the index path (access %q)", wide.Access)
	}
}
