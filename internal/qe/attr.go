package qe

import (
	"fmt"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/query"
	"sdss/internal/sphere"
)

// rowDecoder is the legacy full-struct decode path: every record is decoded
// into its catalog struct before the predicate runs, regardless of which
// attributes the query references. The default scan path now reads
// attributes selectively at fixed byte offsets (query.RowReader); these
// decoders remain as the Engine.FullDecode baseline that experiment E16 and
// the decode micro-benchmarks measure the selective path against.
type rowDecoder interface {
	decode(rec []byte) error
	objID() catalog.ObjID
	get(id query.AttrID) float64
}

// fullRow adapts a rowDecoder to the scan worker's accessor interface.
type fullRow struct{ dec rowDecoder }

func (f fullRow) reset(rec []byte) error { return f.dec.decode(rec) }
func (f fullRow) objID() catalog.ObjID   { return f.dec.objID() }
func (f fullRow) getter() query.Getter   { return f.dec.get }

// newDecoder builds the full-struct decoder for a table.
func newDecoder(t query.Table) (rowAccessor, error) {
	switch t {
	case query.TablePhoto:
		return fullRow{dec: &photoRow{}}, nil
	case query.TableTag:
		return fullRow{dec: &tagRow{}}, nil
	case query.TableSpec:
		return fullRow{dec: &specRow{}}, nil
	default:
		return nil, fmt.Errorf("qe: no decoder for table %v", t)
	}
}

type photoRow struct{ obj catalog.PhotoObj }

func (r *photoRow) decode(rec []byte) error { return r.obj.Decode(rec) }
func (r *photoRow) objID() catalog.ObjID    { return r.obj.ObjID }

func (r *photoRow) get(id query.AttrID) float64 {
	p := &r.obj
	switch id {
	case query.PhotoObjID:
		return float64(p.ObjID)
	case query.PhotoHTMID:
		return float64(p.HTMID)
	case query.PhotoRA:
		return p.RA
	case query.PhotoDec:
		return p.Dec
	case query.PhotoCX:
		return p.X
	case query.PhotoCY:
		return p.Y
	case query.PhotoCZ:
		return p.Z
	case query.PhotoU, query.PhotoG, query.PhotoR, query.PhotoI, query.PhotoZ:
		return float64(p.Mag[id-query.PhotoU])
	case query.PhotoErrU, query.PhotoErrG, query.PhotoErrR, query.PhotoErrI, query.PhotoErrZ:
		return float64(p.MagErr[id-query.PhotoErrU])
	case query.PhotoExtU, query.PhotoExtG, query.PhotoExtR, query.PhotoExtI, query.PhotoExtZ:
		return float64(p.Extinction[id-query.PhotoExtU])
	case query.PhotoPetroRad:
		return float64(p.PetroRad)
	case query.PhotoPetroR50:
		return float64(p.PetroR50)
	case query.PhotoSurfBright:
		return float64(p.SurfBright)
	case query.PhotoSkyBright:
		return float64(p.SkyBright)
	case query.PhotoAirmass:
		return float64(p.Airmass)
	case query.PhotoRowC:
		return float64(p.RowC)
	case query.PhotoColC:
		return float64(p.ColC)
	case query.PhotoPSFWidth:
		return float64(p.PSFWidth)
	case query.PhotoMuRA:
		return float64(p.MuRA)
	case query.PhotoMuDec:
		return float64(p.MuDec)
	case query.PhotoMJD:
		return p.MJD
	case query.PhotoRun:
		return float64(p.Run)
	case query.PhotoCamcol:
		return float64(p.Camcol)
	case query.PhotoField:
		return float64(p.Field)
	case query.PhotoClass:
		return float64(p.Class)
	case query.PhotoFlags:
		return float64(p.Flags)
	default:
		return 0
	}
}

type tagRow struct {
	obj catalog.Tag
	// Cached RA/Dec, derived from the Cartesian triplet on first use.
	raDecOK bool
	ra, dec float64
}

func (r *tagRow) decode(rec []byte) error {
	r.raDecOK = false
	return r.obj.Decode(rec)
}
func (r *tagRow) objID() catalog.ObjID { return r.obj.ObjID }

func (r *tagRow) get(id query.AttrID) float64 {
	t := &r.obj
	switch id {
	case query.TagObjID:
		return float64(t.ObjID)
	case query.TagHTMID:
		return float64(t.HTMID)
	case query.TagCX:
		return t.X
	case query.TagCY:
		return t.Y
	case query.TagCZ:
		return t.Z
	case query.TagRA, query.TagDec:
		if !r.raDecOK {
			r.ra, r.dec = sphere.ToRADec(t.Pos())
			r.raDecOK = true
		}
		if id == query.TagRA {
			return r.ra
		}
		return r.dec
	case query.TagU, query.TagG, query.TagR, query.TagI, query.TagZ:
		return float64(t.Mag[id-query.TagU])
	case query.TagSize:
		return float64(t.Size)
	case query.TagClass:
		return float64(t.Class)
	default:
		return 0
	}
}

type specRow struct {
	obj catalog.SpecObj
	// Cached position, derived from the trixel center on first use (the
	// spectroscopic record carries no Cartesian triplet of its own; its
	// depth-20 trixel localizes it to ~0.3 arcsec).
	posOK bool
	pos   sphere.Vec3
}

func (r *specRow) decode(rec []byte) error {
	r.posOK = false
	return r.obj.Decode(rec)
}
func (r *specRow) objID() catalog.ObjID { return r.obj.ObjID }

func (r *specRow) get(id query.AttrID) float64 {
	s := &r.obj
	switch id {
	case query.SpecObjID:
		return float64(s.ObjID)
	case query.SpecHTMID:
		return float64(s.HTMID)
	case query.SpecRedshift:
		return float64(s.Redshift)
	case query.SpecRedshiftErr:
		return float64(s.RedshiftErr)
	case query.SpecClass:
		return float64(s.Class)
	case query.SpecFiberID:
		return float64(s.FiberID)
	case query.SpecPlate:
		return float64(s.Plate)
	case query.SpecSN:
		return float64(s.SN)
	case query.SpecCX, query.SpecCY, query.SpecCZ:
		if !r.posOK {
			if c, err := htm.Center(s.HTMID); err == nil {
				r.pos = c
			}
			r.posOK = true
		}
		switch id {
		case query.SpecCX:
			return r.pos.X
		case query.SpecCY:
			return r.pos.Y
		default:
			return r.pos.Z
		}
	default:
		return 0
	}
}
