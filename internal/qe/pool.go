package qe

import "sync"

// Batch buffers cycle through a pool so the steady-state scan path allocates
// nothing per record: a scan worker takes an empty buffer, fills it, and
// hands it downstream with ownership; whichever node finally consumes the
// batch without forwarding it returns the buffer via RecycleBatch.
//
// Ownership discipline: a batch on a channel belongs to the receiver. Nodes
// that forward a batch (possibly re-sliced — the base array travels with it)
// pass ownership along; nodes that drop or fully copy a batch recycle it.
// Result.Values arrays are deliberately NOT pooled — collected results and
// materialized job rows keep referencing them after the Batch buffer is
// reused, and only the Result structs themselves are copied around.
var batchPool = sync.Pool{New: func() any { return Batch(nil) }}

// getBatch returns an empty batch with capacity ≥ n.
func getBatch(n int) Batch {
	b := batchPool.Get().(Batch)
	if cap(b) < n {
		return make(Batch, 0, n)
	}
	return b[:0]
}

// RecycleBatch returns a batch's buffer to the pool. Callers must own the
// batch (received it from a Rows stream or an internal channel) and must not
// touch it afterwards; the Result structs will be overwritten, though any
// Values slices stay valid. It is safe on batches of unknown origin only in
// the sense that misuse corrupts results, not memory — so the engine calls
// it exactly at the points where a batch provably stops flowing.
func RecycleBatch(b Batch) {
	if cap(b) == 0 {
		return
	}
	batchPool.Put(b[:0]) //nolint:staticcheck // slice header box is amortized per batch
}
