package qe

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sdss/internal/load"
	"sdss/internal/skygen"
	"sdss/internal/store"
)

// rowEngine clones an engine with the vectorized kernels disabled, so every
// scan runs the legacy row loop. Zone pruning stays on: the property under
// test is the kernel path alone.
func rowEngine(e *Engine) *Engine {
	r := e.Clone()
	r.NoKernel = true
	return r
}

// kernelPropertyQueries covers every kernel shape: exact key-range kernels
// (range, equality, dictionary), prefilter+residual (arithmetic, OR),
// negation with NaN admission, and predicates over every column kind the
// block layouts encode (f32 magnitudes, f64 ra/dec/mjd, u64 objid, int
// run/camcol/flags, dictionary class).
var kernelPropertyQueries = []string{
	"SELECT objid, r FROM tag WHERE r < 18",
	"SELECT objid, r FROM tag WHERE r >= 14 AND r <= 15",
	"SELECT objid FROM tag WHERE NOT (r < 20)",
	"SELECT objid FROM tag WHERE r < 15 OR r > 21",
	"SELECT objid FROM tag WHERE class = 'GALAXY' AND r < 20",
	"SELECT objid FROM tag WHERE class = 'QSO'",
	"SELECT objid FROM tag WHERE class = 'UNKNOWN'", // dictionary miss in most containers
	"SELECT objid FROM tag WHERE u - g > 1 AND r < 20",
	"SELECT objid, r FROM tag WHERE r < 20 ORDER BY r LIMIT 50",
	"SELECT COUNT(*) FROM tag WHERE r < 19",
	"SELECT objid, r FROM photoobj WHERE r < 18",
	"SELECT objid FROM photoobj WHERE run = 2 AND camcol = 3",
	"SELECT objid, mjd FROM photoobj WHERE mjd > 51000",
	"SELECT objid FROM photoobj WHERE flags = 0 AND r < 21",
	"SELECT objid, ra, dec FROM photoobj WHERE dec > 30 AND dec < 40",
	"SELECT objid FROM photoobj WHERE NOT (petrorad < 3)",
	"SELECT objid FROM specobj WHERE redshift > 0.5 AND sn > 10",
}

// TestKernelScanMatchesRowScan is the acceptance property: kernel-filtered
// scans return bit-identical results to the legacy row path, across seeds,
// the full predicate grid, and 1-versus-8-shard layouts.
func TestKernelScanMatchesRowScan(t *testing.T) {
	for _, seed := range []int64{7, 23} {
		for _, shards := range []int{1, 8} {
			e := testShardArchive(t, 6000, seed, shards)
			row := rowEngine(e)
			for _, q := range kernelPropertyQueries {
				got := mustCollect(t, e, q)
				want := mustCollect(t, row, q)
				canonical(got)
				canonical(want)
				if err := sameResultsExact(got, want); err != nil {
					t.Errorf("seed %d shards %d %q: %v", seed, shards, q, err)
				}
			}
		}
	}
}

// TestKernelObjIDEquality exercises the u64 key-equality kernel with a
// point predicate taken from a real loaded object.
func TestKernelObjIDEquality(t *testing.T) {
	e, photo, _ := testArchive(t, 4000, 5)
	row := rowEngine(e)
	for _, i := range []int{0, len(photo) / 3, len(photo) - 1} {
		q := fmt.Sprintf("SELECT objid, r FROM photoobj WHERE objid = %d", photo[i].ObjID)
		got := mustCollect(t, e, q)
		want := mustCollect(t, row, q)
		if err := sameResultsExact(got, want); err != nil {
			t.Errorf("%q: %v", q, err)
		}
		if len(got) != 1 {
			t.Errorf("%q: %d rows, want 1", q, len(got))
		}
	}
}

// TestKernelNaNColumns runs the kernel path over a store with NaN-bearing
// magnitude columns: plain comparisons must drop NaN rows, negations must
// return exactly them, matching the row loop bit for bit.
func TestKernelNaNColumns(t *testing.T) {
	e, _, _ := nanArchive(t)
	row := rowEngine(e)
	for _, q := range []string{
		"SELECT objid, r FROM tag WHERE r < 100",
		"SELECT objid, r FROM tag WHERE NOT (r < 100)",
		"SELECT objid FROM tag WHERE NOT (r < 17)",
		"SELECT objid FROM tag WHERE NOT (r < 17) AND NOT (r > 30)",
		"SELECT objid, r FROM tag WHERE r >= 14 AND r <= 18",
	} {
		got := mustCollect(t, e, q)
		want := mustCollect(t, row, q)
		canonical(got)
		canonical(want)
		if err := sameResultsExact(got, want); err != nil {
			t.Errorf("%q: %v", q, err)
		}
	}
}

// TestKernelForcedRawBlocks flips every slab to forced-raw encodings and
// re-runs the grid: the kernels must be encoding-agnostic.
func TestKernelForcedRawBlocks(t *testing.T) {
	e := testShardArchive(t, 5000, 11, 2)
	row := rowEngine(e)
	for _, st := range []interface {
		SetColBlkRaw(bool)
		RebuildColBlks()
	}{e.Photo, e.Tag, e.Spec} {
		st.SetColBlkRaw(true)
		st.RebuildColBlks()
	}
	for _, q := range kernelPropertyQueries {
		got := mustCollect(t, e, q)
		want := mustCollect(t, row, q)
		canonical(got)
		canonical(want)
		if err := sameResultsExact(got, want); err != nil {
			t.Errorf("raw blocks %q: %v", q, err)
		}
	}
}

// TestKernelLegacyArchiveRebuild reopens a persisted archive whose COLBLK
// sidecars were deleted — the pre-columnar on-disk layout. Slabs must
// rebuild transparently, validate, and the kernel path must still agree
// with the row loop.
func TestKernelLegacyArchiveRebuild(t *testing.T) {
	dir := t.TempDir()
	photo, spec, err := skygen.GenerateAll(skygen.Default(13, 4000), 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	tgt.Sort()
	if err := tgt.Flush(); err != nil {
		t.Fatal(err)
	}
	// Strip the column-block sidecars, leaving a legacy archive.
	stripped := 0
	if err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && info.Name() == "COLBLK" {
			stripped++
			return os.Remove(path)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if stripped == 0 {
		t.Fatal("no COLBLK sidecars found to strip")
	}
	re, err := load.NewTarget(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Photo: re.Photo, Tag: re.Tag, Spec: re.Spec}
	row := rowEngine(e)
	for _, q := range kernelPropertyQueries {
		got := mustCollect(t, e, q)
		want := mustCollect(t, row, q)
		canonical(got)
		canonical(want)
		if err := sameResultsExact(got, want); err != nil {
			t.Errorf("legacy archive %q: %v", q, err)
		}
	}
	// Every rebuilt slab must round-trip its container's records.
	for _, st := range []*store.Sharded{re.Photo, re.Tag, re.Spec} {
		for _, cid := range st.Containers() {
			if err := st.CheckColBlk(cid); err != nil {
				t.Fatalf("rebuilt slab %v: %v", cid, err)
			}
		}
	}
}
