package qe

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/load"
	"sdss/internal/query"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

// testArchive loads a small deterministic survey and returns the engine
// plus the raw objects for brute-force verification.
func testArchive(t testing.TB, n int, seed int64) (*Engine, []catalog.PhotoObj, []catalog.SpecObj) {
	t.Helper()
	photo, spec, err := skygen.GenerateAll(skygen.Default(seed, n), 2)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range splitChunks(photo, spec) {
		if _, err := tgt.LoadChunk(ch); err != nil {
			t.Fatal(err)
		}
	}
	tgt.Sort()
	return &Engine{Photo: tgt.Photo, Tag: tgt.Tag, Spec: tgt.Spec}, photo, spec
}

func splitChunks(photo []catalog.PhotoObj, spec []catalog.SpecObj) []*skygen.Chunk {
	return []*skygen.Chunk{{Photo: photo, Spec: spec}}
}

func mustCollect(t testing.TB, e *Engine, q string) []Result {
	t.Helper()
	rows, err := e.ExecuteString(context.Background(), q)
	if err != nil {
		t.Fatalf("execute %q: %v", q, err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatalf("collect %q: %v", q, err)
	}
	return res
}

func TestSimplePredicateMatchesBruteForce(t *testing.T) {
	e, photo, _ := testArchive(t, 4000, 1)
	got := mustCollect(t, e, "SELECT objid FROM photoobj WHERE r < 20 AND u - g > 1")
	want := make(map[catalog.ObjID]bool)
	for i := range photo {
		p := &photo[i]
		if p.Mag[catalog.R] < 20 && p.Mag[catalog.U]-p.Mag[catalog.G] > 1 {
			want[p.ObjID] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("engine found %d, brute force %d", len(got), len(want))
	}
	for _, r := range got {
		if !want[r.ObjID] {
			t.Fatalf("engine returned wrong object %d", r.ObjID)
		}
	}
}

func TestConeSearchMatchesBruteForce(t *testing.T) {
	e, photo, _ := testArchive(t, 4000, 2)
	// Center the cone on a real object so it is never empty.
	c := &photo[10]
	q := fmt.Sprintf("SELECT objid, ra, dec FROM photoobj WHERE CIRCLE(%v, %v, 30)", c.RA, c.Dec)
	got := mustCollect(t, e, q)
	center := c.Pos()
	radius := 30 * sphere.Arcmin
	want := make(map[catalog.ObjID]bool)
	for i := range photo {
		if sphere.CosDist(center, photo[i].Pos()) >= math.Cos(radius) {
			want[photo[i].ObjID] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("cone: engine %d, brute force %d", len(got), len(want))
	}
	for _, r := range got {
		if !want[r.ObjID] {
			t.Fatal("wrong object in cone")
		}
		if len(r.Values) != 3 { // objid, ra, dec
			t.Fatalf("projection has %d values, want 3", len(r.Values))
		}
	}
}

func TestTagAndSpecTables(t *testing.T) {
	e, photo, spec := testArchive(t, 4000, 3)
	// Tag scan must agree with photo scan for tag-resident attributes.
	gotTag := mustCollect(t, e, "SELECT objid FROM tag WHERE r < 19 AND class = 'GALAXY'")
	var want int
	for i := range photo {
		if photo[i].Mag[catalog.R] < 19 && photo[i].Class == catalog.ClassGalaxy {
			want++
		}
	}
	if len(gotTag) != want {
		t.Errorf("tag scan found %d, want %d", len(gotTag), want)
	}
	// Spec scan.
	gotSpec := mustCollect(t, e, "SELECT objid, redshift FROM specobj WHERE redshift > 1")
	var wantSpec int
	for i := range spec {
		if spec[i].Redshift > 1 {
			wantSpec++
		}
	}
	if len(gotSpec) != wantSpec {
		t.Errorf("spec scan found %d, want %d", len(gotSpec), wantSpec)
	}
}

func TestAggregates(t *testing.T) {
	e, photo, _ := testArchive(t, 3000, 4)
	res := mustCollect(t, e, "SELECT COUNT(*) FROM photoobj WHERE class = 'STAR'")
	if len(res) != 1 || len(res[0].Values) != 1 {
		t.Fatalf("count result shape: %+v", res)
	}
	var want float64
	var sumR, minR, maxR float64
	minR, maxR = math.Inf(1), math.Inf(-1)
	for i := range photo {
		if photo[i].Class == catalog.ClassStar {
			want++
			r := float64(photo[i].Mag[catalog.R])
			sumR += r
			minR = math.Min(minR, r)
			maxR = math.Max(maxR, r)
		}
	}
	if res[0].Values[0] != want {
		t.Errorf("COUNT = %v, want %v", res[0].Values[0], want)
	}
	check := func(q string, want float64) {
		res := mustCollect(t, e, q)
		if len(res) != 1 || math.Abs(res[0].Values[0]-want) > 1e-5*math.Abs(want)+1e-9 {
			t.Errorf("%q = %v, want %v", q, res[0].Values, want)
		}
	}
	check("SELECT AVG(r) FROM photoobj WHERE class = 'STAR'", sumR/want)
	check("SELECT MIN(r) FROM photoobj WHERE class = 'STAR'", minR)
	check("SELECT MAX(r) FROM photoobj WHERE class = 'STAR'", maxR)
	check("SELECT SUM(r) FROM photoobj WHERE class = 'STAR'", sumR)
}

func TestOrderByAndLimit(t *testing.T) {
	e, _, _ := testArchive(t, 3000, 5)
	res := mustCollect(t, e, "SELECT objid, r FROM photoobj WHERE class = 'QSO' ORDER BY r LIMIT 5")
	if len(res) > 5 {
		t.Fatalf("limit ignored: %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Values[1] < res[i-1].Values[1] {
			t.Fatalf("not sorted ascending: %v then %v", res[i-1].Values[1], res[i].Values[1])
		}
	}
	resD := mustCollect(t, e, "SELECT objid, r FROM photoobj WHERE class = 'QSO' ORDER BY r DESC LIMIT 5")
	for i := 1; i < len(resD); i++ {
		if resD[i].Values[1] > resD[i-1].Values[1] {
			t.Fatal("not sorted descending")
		}
	}
	// The brightest quasar must coincide.
	if len(res) > 0 && len(resD) > 0 {
		all := mustCollect(t, e, "SELECT objid, r FROM photoobj WHERE class = 'QSO'")
		minR := math.Inf(1)
		for _, r := range all {
			minR = math.Min(minR, r.Values[1])
		}
		if res[0].Values[1] != minR {
			t.Errorf("ORDER BY r first = %v, true min %v", res[0].Values[1], minR)
		}
	}
}

func TestSetOperations(t *testing.T) {
	e, photo, _ := testArchive(t, 3000, 6)
	var nBright, nRed, nBoth int
	for i := range photo {
		bright := photo[i].Mag[catalog.R] < 20
		red := photo[i].Mag[catalog.G]-photo[i].Mag[catalog.R] > 0.8
		if bright {
			nBright++
		}
		if red {
			nRed++
		}
		if bright && red {
			nBoth++
		}
	}
	union := mustCollect(t, e, "(SELECT objid FROM tag WHERE r < 20) UNION (SELECT objid FROM tag WHERE g - r > 0.8)")
	if len(union) != nBright+nRed-nBoth {
		t.Errorf("union = %d, want %d", len(union), nBright+nRed-nBoth)
	}
	inter := mustCollect(t, e, "(SELECT objid FROM tag WHERE r < 20) INTERSECT (SELECT objid FROM tag WHERE g - r > 0.8)")
	if len(inter) != nBoth {
		t.Errorf("intersect = %d, want %d", len(inter), nBoth)
	}
	minus := mustCollect(t, e, "(SELECT objid FROM tag WHERE r < 20) MINUS (SELECT objid FROM tag WHERE g - r > 0.8)")
	if len(minus) != nBright-nBoth {
		t.Errorf("minus = %d, want %d", len(minus), nBright-nBoth)
	}
}

func TestCrossTableSetOp(t *testing.T) {
	// Objects with spectra: photo INTERSECT spec on objid.
	e, _, spec := testArchive(t, 3000, 7)
	res := mustCollect(t, e, "(SELECT objid FROM photoobj) INTERSECT (SELECT objid FROM specobj)")
	if len(res) != len(spec) {
		t.Errorf("photo∩spec = %d, want %d (every spectrum has a photo object)", len(res), len(spec))
	}
}

func TestExecuteErrors(t *testing.T) {
	e, _, _ := testArchive(t, 500, 8)
	if _, err := e.ExecuteString(context.Background(), "SELECT bogus FROM tag"); err == nil {
		t.Error("bad query accepted")
	}
	// Engine with a missing table.
	e2 := &Engine{Photo: e.Photo}
	if _, err := e2.ExecuteString(context.Background(), "SELECT objid FROM specobj"); err == nil {
		t.Error("query on missing store accepted")
	}
}

func TestCancellation(t *testing.T) {
	e, _, _ := testArchive(t, 5000, 9)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.ExecuteString(ctx, "SELECT objid FROM photoobj")
	if err != nil {
		t.Fatal(err)
	}
	// Read one batch then cancel; the stream must close promptly.
	<-rows.C
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-rows.C:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream did not close after cancellation")
		}
	}
}

func TestRowsClose(t *testing.T) {
	e, _, _ := testArchive(t, 3000, 10)
	rows, err := e.ExecuteString(context.Background(), "SELECT objid FROM photoobj")
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
	for b := range rows.C {
		RecycleBatch(b)
	}
	// Err must not report the cancellation as a failure.
	if err := rows.Err(); err != nil {
		t.Errorf("Err after Close = %v", err)
	}
}

func TestASAPFirstResultBeatsBlocking(t *testing.T) {
	e, _, _ := testArchive(t, 20000, 11)
	q := "SELECT objid FROM photoobj WHERE r < 23"

	measure := func(blocking bool) (first, total time.Duration) {
		e.Blocking = blocking
		defer func() { e.Blocking = false }()
		start := time.Now()
		rows, err := e.ExecuteString(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for b := range rows.C {
			if first == 0 && len(b) > 0 {
				first = time.Since(start)
			}
			RecycleBatch(b)
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if first == 0 {
			t.Fatal("no results")
		}
		return first, time.Since(start)
	}
	measure(false) // warm caches
	asapFirst, asapTotal := measure(false)
	blockFirst, blockTotal := measure(true)
	// The structural property (robust to cache and scheduler noise):
	// streaming delivers the first row early in its own execution, while
	// a blocking execution cannot deliver anything until it is nearly
	// done.
	if frac := float64(asapFirst) / float64(asapTotal); frac > 0.5 {
		t.Errorf("ASAP first result at %.0f%% of its run (%v of %v)", 100*frac, asapFirst, asapTotal)
	}
	if frac := float64(blockFirst) / float64(blockTotal); frac < 0.5 {
		t.Errorf("blocking first result at %.0f%% of its run (%v of %v) — not actually blocking",
			100*frac, blockFirst, blockTotal)
	}
}

func TestSpatialPruningScansFewerRecords(t *testing.T) {
	e, photo, _ := testArchive(t, 10000, 12)
	c := &photo[0]
	cone := fmt.Sprintf("SELECT COUNT(*) FROM photoobj WHERE CIRCLE(%v, %v, 10)", c.RA, c.Dec)
	full := "SELECT COUNT(*) FROM photoobj"

	timeQuery := func(q string) time.Duration {
		start := time.Now()
		mustCollect(t, e, q)
		return time.Since(start)
	}
	// Warm up, then compare.
	timeQuery(full)
	coneT := timeQuery(cone)
	fullT := timeQuery(full)
	if coneT > fullT {
		t.Logf("warning: cone query (%v) not faster than full scan (%v) at this scale", coneT, fullT)
	}
}

func BenchmarkFullScanCount(b *testing.B) {
	e, _, _ := testArchive(b, 20000, 1)
	ctx := context.Background()
	prep, err := query.PrepareString("SELECT COUNT(*) FROM photoobj WHERE r < 22")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.Execute(ctx, prep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rows.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConeSearch(b *testing.B) {
	e, photo, _ := testArchive(b, 20000, 1)
	ctx := context.Background()
	q := fmt.Sprintf("SELECT objid FROM photoobj WHERE CIRCLE(%v, %v, 15)", photo[0].RA, photo[0].Dec)
	prep, err := query.PrepareString(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := e.Execute(ctx, prep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rows.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}
