package tiling

import (
	"math"
	"math/rand"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

func randCapTargets(rng *rand.Rand, n int, centerRA, centerDec, radiusDeg float64) []Target {
	out := make([]Target, 0, n)
	c := sphere.FromRADec(centerRA, centerDec)
	e1 := c.Orthogonal()
	e2 := c.Cross(e1)
	for i := 0; i < n; i++ {
		// Uniform in a small cap via rejection on the tangent plane.
		r := radiusDeg * sphere.Deg * math.Sqrt(rng.Float64())
		phi := 2 * math.Pi * rng.Float64()
		p := c.Add(e1.Scale(r * math.Cos(phi))).Add(e2.Scale(r * math.Sin(phi))).Normalize()
		out = append(out, Target{ID: uint64(i), Pos: p})
	}
	return out
}

func TestPlanSingleTileField(t *testing.T) {
	// A compact field (0.5° radius, well inside one tile) under the fiber
	// budget: the first plate takes nearly everything; any follow-up
	// plates exist only to resolve fiber collisions (close pairs that
	// cannot be plugged on the same plate), so total coverage is 100%.
	rng := rand.New(rand.NewSource(1))
	targets := randCapTargets(rng, 300, 180, 30, 0.5)
	res, err := Plan(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiles) < 1 || len(res.Tiles) > 3 {
		t.Fatalf("placed %d tiles, want 1-3 (first plate + collision mop-up)", len(res.Tiles))
	}
	if res.Coverage() != 1 {
		t.Errorf("coverage %.3f, want 1.0", res.Coverage())
	}
	if frac := float64(len(res.Tiles[0].Assigned)) / float64(len(targets)); frac < 0.85 {
		t.Errorf("first plate took %.2f of targets, want ≥ 0.85", frac)
	}
	// All assigned targets must lie within their tile's radius.
	byID := make(map[uint64]sphere.Vec3)
	for _, tg := range targets {
		byID[tg.ID] = tg.Pos
	}
	for _, tile := range res.Tiles {
		for _, id := range tile.Assigned {
			if sphere.Dist(byID[id], tile.Center) > TileRadius+1e-9 {
				t.Fatal("assigned target outside tile")
			}
		}
	}
}

func TestFiberBudgetForcesOverlap(t *testing.T) {
	// 1500 targets in one field exceed the 640-fiber budget: the
	// optimizer must stack overlapping tiles on the same area.
	rng := rand.New(rand.NewSource(2))
	targets := randCapTargets(rng, 1500, 100, 45, 1.0)
	res, err := Plan(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiles) < 3 {
		t.Fatalf("placed %d tiles for 1500 targets, want ≥ 3", len(res.Tiles))
	}
	if res.Overlaps == 0 {
		t.Error("no overlapping tiles over a dense field")
	}
	if res.Coverage() < 0.9 {
		t.Errorf("coverage %.2f", res.Coverage())
	}
	// No target assigned twice.
	seen := make(map[uint64]bool)
	for _, tile := range res.Tiles {
		for _, id := range tile.Assigned {
			if seen[id] {
				t.Fatalf("target %d assigned on two tiles", id)
			}
			seen[id] = true
		}
		if len(tile.Assigned) > FibersPerTile {
			t.Fatalf("tile exceeds fiber budget: %d", len(tile.Assigned))
		}
	}
}

func TestOverlapsConcentrateAtDensity(t *testing.T) {
	// Two fields: a dense one (1400 targets) and a sparse one (200),
	// far apart. The dense field must receive more tiles.
	rng := rand.New(rand.NewSource(3))
	targets := randCapTargets(rng, 1400, 150, 30, 1.0)
	sparse := randCapTargets(rng, 200, 260, 15, 1.0)
	for i := range sparse {
		sparse[i].ID += 10000
	}
	targets = append(targets, sparse...)
	res, err := Plan(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	denseCenter := sphere.FromRADec(150, 30)
	var denseTiles, sparseTiles int
	for _, tile := range res.Tiles {
		if sphere.Dist(tile.Center, denseCenter) < 10*sphere.Deg {
			denseTiles++
		} else {
			sparseTiles++
		}
	}
	if denseTiles <= sparseTiles {
		t.Errorf("dense field got %d tiles, sparse got %d — density not maximized", denseTiles, sparseTiles)
	}
}

func TestFiberCollisionConstraint(t *testing.T) {
	// Targets packed closer than the collision limit cannot all be
	// plugged on one plate.
	var targets []Target
	base := sphere.FromRADec(200, 20)
	e1 := base.Orthogonal()
	for i := 0; i < 10; i++ {
		p := base.Add(e1.Scale(float64(i) * 10 * sphere.Arcsec)).Normalize()
		targets = append(targets, Target{ID: uint64(i), Pos: p})
	}
	res, err := Plan(targets, Options{MaxTiles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiles) != 1 {
		t.Fatalf("tiles = %d", len(res.Tiles))
	}
	// 10 targets spaced 10 arcsec apart with a 55 arcsec limit: at most
	// ⌈90/55⌉+1 = 2-3 fit.
	if got := len(res.Tiles[0].Assigned); got > 3 {
		t.Errorf("plate plugged %d colliding fibers", got)
	}
	if res.Collided == 0 {
		t.Error("no collisions recorded for packed targets")
	}
	// Verify pairwise separations on the plate.
	byID := make(map[uint64]sphere.Vec3)
	for _, tg := range targets {
		byID[tg.ID] = tg.Pos
	}
	a := res.Tiles[0].Assigned
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			if sphere.Dist(byID[a[i]], byID[a[j]]) < FiberCollision-1e-9 {
				t.Fatal("two plugged fibers collide")
			}
		}
	}
}

func TestMaxTilesAndValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	targets := randCapTargets(rng, 2000, 120, 40, 1.0)
	res, err := Plan(targets, Options{MaxTiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiles) != 2 {
		t.Errorf("MaxTiles ignored: %d tiles", len(res.Tiles))
	}
	if res.Assigned > 2*FibersPerTile {
		t.Errorf("assigned %d with 2 tiles", res.Assigned)
	}
	if _, err := Plan([]Target{{ID: 1, Pos: sphere.Vec3{X: 2}}}, Options{}); err == nil {
		t.Error("non-unit target accepted")
	}
	// Empty input.
	empty, err := Plan(nil, Options{})
	if err != nil || len(empty.Tiles) != 0 || empty.Coverage() != 1 {
		t.Errorf("empty plan: %+v, %v", empty, err)
	}
}

func TestPlanOnSyntheticSpectroSample(t *testing.T) {
	// End to end on the survey generator's spectroscopic selection.
	photo, spec, err := skygen.GenerateAll(skygen.Default(5, 30000), 2)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[catalog.ObjID]*catalog.PhotoObj)
	for i := range photo {
		byID[photo[i].ObjID] = &photo[i]
	}
	var targets []Target
	for i := range spec {
		if o := byID[spec[i].ObjID]; o != nil {
			targets = append(targets, Target{ID: uint64(spec[i].ObjID), Pos: o.Pos()})
		}
	}
	if len(targets) == 0 {
		t.Skip("no spectro targets at this scale")
	}
	res, err := Plan(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.9 {
		t.Errorf("spectro tiling coverage %.2f (%d tiles for %d targets)",
			res.Coverage(), len(res.Tiles), len(targets))
	}
	t.Logf("tiling: %d targets, %d tiles, coverage %.1f%%, mean utilization %.1f%%, %d overlapping pairs",
		len(targets), len(res.Tiles), 100*res.Coverage(), 100*res.MeanUtil, res.Overlaps)
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	targets := randCapTargets(rng, 800, 90, 50, 1.5)
	a, err := Plan(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tiles) != len(b.Tiles) || a.Assigned != b.Assigned {
		t.Fatal("tiling not deterministic")
	}
	for i := range a.Tiles {
		if a.Tiles[i].Center != b.Tiles[i].Center {
			t.Fatal("tile centers differ between runs")
		}
	}
}
