// Package tiling implements the spectroscopic survey's tile placement: "The
// spectroscopic observations will be done in overlapping 3° circular
// 'tiles'. The tile centers are determined by an optimization algorithm,
// which maximizes overlaps at areas of highest target density."
//
// Each tile is one plug plate feeding the two multi-fiber spectrographs —
// 640 optical fibers, each 3 arcsec in diameter, with a mechanical lower
// bound on fiber separation. The optimizer places tiles greedily on the
// current densest concentration of unassigned targets and allocates fibers
// inside each tile subject to the collision constraint; clustered regions
// naturally accumulate overlapping tiles, which is exactly the behaviour
// the paper's algorithm maximizes.
package tiling

import (
	"fmt"
	"math"
	"sort"

	"sdss/internal/htm"
	"sdss/internal/sphere"
)

// Survey hardware constants.
const (
	// TileRadius is half the 3-degree tile diameter, in radians.
	TileRadius = 1.5 * sphere.Deg
	// FibersPerTile is the spectrograph capacity: 640 optical fibers.
	FibersPerTile = 640
	// FiberCollision is the minimum angular separation between two fibers
	// on the same plate (plug holes cannot overlap), 55 arcsec.
	FiberCollision = 55 * sphere.Arcsec
)

// Target is one spectroscopic target.
type Target struct {
	ID  uint64
	Pos sphere.Vec3
}

// Tile is one placed plug plate.
type Tile struct {
	Center   sphere.Vec3
	Assigned []uint64 // target IDs allocated fibers on this tile
}

// Options tunes the optimizer.
type Options struct {
	// MaxTiles caps the number of tiles (0 = until coverage stalls).
	MaxTiles int
	// DensityDepth is the HTM depth of the density map guiding placement
	// (default 4: ~4.5° cells, comparable to the tile size).
	DensityDepth int
	// MinYield stops placing tiles when the best tile would assign fewer
	// than this many targets (default 1).
	MinYield int
}

func (o Options) densityDepth() int {
	if o.DensityDepth > 0 {
		return o.DensityDepth
	}
	return 4
}

func (o Options) minYield() int {
	if o.MinYield > 0 {
		return o.MinYield
	}
	return 1
}

// Result is the tiling solution plus its quality metrics.
type Result struct {
	Tiles     []Tile
	Assigned  int     // targets that received fibers
	Total     int     // input targets
	MeanUtil  float64 // mean fibers used / FibersPerTile
	Overlaps  int     // tile pairs closer than one tile diameter
	Collided  int     // targets skipped due to fiber collisions
	Unreached int     // targets outside every placed tile
}

// Coverage returns the fraction of targets assigned fibers.
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Assigned) / float64(r.Total)
}

// Plan places tiles over the targets. The algorithm is the greedy
// maximum-yield heuristic: repeatedly build a density map of unassigned
// targets on a coarse HTM grid, center a candidate tile on the densest
// cell's local centroid, allocate fibers (brightest-first ordering is the
// caller's job; here input order breaks ties), and repeat.
func Plan(targets []Target, opts Options) (*Result, error) {
	for i := range targets {
		if !targets[i].Pos.IsUnit(1e-6) {
			return nil, fmt.Errorf("tiling: target %d position is not a unit vector", targets[i].ID)
		}
	}
	res := &Result{Total: len(targets)}
	assigned := make([]bool, len(targets))
	remaining := len(targets)
	depth := opts.densityDepth()

	for remaining > 0 {
		if opts.MaxTiles > 0 && len(res.Tiles) >= opts.MaxTiles {
			break
		}
		// Density map of unassigned targets.
		density := make(map[htm.ID][]int)
		for i := range targets {
			if assigned[i] {
				continue
			}
			id, err := htm.Lookup(targets[i].Pos, depth)
			if err != nil {
				return nil, err
			}
			density[id] = append(density[id], i)
		}
		// Densest cell; ties broken by trixel ID for determinism.
		var bestCell htm.ID
		bestCount := -1
		for id, members := range density {
			if len(members) > bestCount || (len(members) == bestCount && id < bestCell) {
				bestCell, bestCount = id, len(members)
			}
		}
		if bestCount <= 0 {
			break
		}
		// Center the tile on the centroid of the cell's unassigned
		// targets — the local density peak.
		var centroid sphere.Vec3
		for _, i := range density[bestCell] {
			centroid = centroid.Add(targets[i].Pos)
		}
		center := centroid.Normalize()

		tile, collided := placeTile(targets, assigned, center)
		if len(tile.Assigned) == 0 {
			// Sparse cell: the centroid fell between targets spread wider
			// than a tile. Center on the cell's first unassigned target
			// instead, which guarantees progress.
			tile, collided = placeTile(targets, assigned, targets[density[bestCell][0]].Pos)
		}
		if len(tile.Assigned) < opts.minYield() {
			break
		}
		res.Collided += collided
		remaining -= len(tile.Assigned)
		res.Assigned += len(tile.Assigned)
		res.Tiles = append(res.Tiles, tile)
	}

	// Quality metrics.
	var utilSum float64
	for _, t := range res.Tiles {
		utilSum += float64(len(t.Assigned)) / FibersPerTile
	}
	if len(res.Tiles) > 0 {
		res.MeanUtil = utilSum / float64(len(res.Tiles))
	}
	for i := 0; i < len(res.Tiles); i++ {
		for j := i + 1; j < len(res.Tiles); j++ {
			if sphere.Dist(res.Tiles[i].Center, res.Tiles[j].Center) < 2*TileRadius {
				res.Overlaps++
			}
		}
	}
	cosR := math.Cos(TileRadius)
	for i := range targets {
		if assigned[i] {
			continue
		}
		reached := false
		for _, t := range res.Tiles {
			if sphere.CosDist(targets[i].Pos, t.Center) >= cosR {
				reached = true
				break
			}
		}
		if !reached {
			res.Unreached++
		}
	}
	return res, nil
}

// placeTile allocates fibers on one tile centered at center: unassigned
// targets within TileRadius, nearest-to-center first, capped at
// FibersPerTile, skipping targets within FiberCollision of an already
// plugged fiber. It returns the tile and the number of collision skips.
func placeTile(targets []Target, assigned []bool, center sphere.Vec3) (Tile, int) {
	cosR := math.Cos(TileRadius)
	type cand struct {
		idx int
		cos float64
	}
	var cands []cand
	for i := range targets {
		if assigned[i] {
			continue
		}
		if c := sphere.CosDist(targets[i].Pos, center); c >= cosR {
			cands = append(cands, cand{idx: i, cos: c})
		}
	}
	// Nearest to the plate center first (lowest airmass gradient), stable
	// on input order.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].cos > cands[b].cos })

	tile := Tile{Center: center}
	cosCollide := math.Cos(FiberCollision)
	var plugged []sphere.Vec3
	collisions := 0
	for _, c := range cands {
		if len(tile.Assigned) >= FibersPerTile {
			break
		}
		p := targets[c.idx].Pos
		ok := true
		for _, q := range plugged {
			if sphere.CosDist(p, q) > cosCollide {
				ok = false
				break
			}
		}
		if !ok {
			collisions++
			continue
		}
		plugged = append(plugged, p)
		assigned[c.idx] = true
		tile.Assigned = append(tile.Assigned, targets[c.idx].ID)
	}
	return tile, collisions
}
