// Package cluster simulates the array of commodity servers the paper's
// scalable-architecture section builds on: 20 nodes of 4 Xeons and 12 disks
// each, every node able to stream ~150 MB/s off its disks.
//
// The fabric provides what the real hardware provided: partition ownership
// (each node holds a share of the containers), optional replication of data
// onto a second node, per-node I/O throttling (so scaling measurements see
// a disk-like bottleneck instead of memory bandwidth), byte accounting, and
// failure injection. Real goroutine parallelism runs underneath, so scaling
// shape measurements are genuine.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdss/internal/htm"
)

// Node is one simulated commodity server.
type Node struct {
	ID int

	rate float64 // bytes/sec; 0 = unthrottled

	mu       sync.Mutex
	nextFree time.Time // when the simulated disk is next idle

	bytesRead atomic.Int64
	dead      atomic.Bool
}

// Read accounts for (and, if throttled, waits out) reading n bytes from the
// node's disks. Concurrent readers serialize, like a shared disk arm.
// Sub-millisecond debts accumulate instead of sleeping, because the OS
// cannot sleep precisely for microseconds; the aggregate rate stays exact.
func (n *Node) Read(nbytes int) {
	n.bytesRead.Add(int64(nbytes))
	if n.rate <= 0 {
		return
	}
	d := time.Duration(float64(nbytes) / n.rate * float64(time.Second))
	n.mu.Lock()
	now := time.Now()
	if n.nextFree.Before(now) {
		n.nextFree = now
	}
	n.nextFree = n.nextFree.Add(d)
	wait := n.nextFree.Sub(now)
	n.mu.Unlock()
	// Sleeping for tiny intervals oversleeps by ~1 ms each time; let small
	// debts build up and settle them in one accurate sleep.
	if wait >= 2*time.Millisecond {
		time.Sleep(wait)
	}
}

// BytesRead returns the cumulative bytes this node has served.
func (n *Node) BytesRead() int64 { return n.bytesRead.Load() }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return !n.dead.Load() }

// Fabric is a set of nodes plus the container partition map.
type Fabric struct {
	nodes []*Node

	mu       sync.RWMutex
	primary  map[htm.ID]int // container → owning node
	replica  map[htm.ID]int // container → backup node (-1 if none)
	assigned map[int][]htm.ID
}

// New creates a fabric of n nodes, each throttled to ratePerNode bytes/sec
// (0 = unthrottled).
func New(n int, ratePerNode float64) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	f := &Fabric{
		primary:  make(map[htm.ID]int),
		replica:  make(map[htm.ID]int),
		assigned: make(map[int][]htm.ID),
	}
	for i := 0; i < n; i++ {
		f.nodes = append(f.nodes, &Node{ID: i, rate: ratePerNode})
	}
	return f, nil
}

// NumNodes returns the fabric size (including dead nodes).
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// Node returns node i.
func (f *Fabric) Node(i int) *Node { return f.nodes[i] }

// Partition assigns containers to nodes round-robin (containers arrive
// sorted by trixel ID, so round-robin stripes the sky across nodes and
// spatially adjacent containers land on different nodes — good for query
// hot spots). With replicate, each container also gets a backup node.
func (f *Fabric) Partition(containers []htm.ID, replicate bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.primary = make(map[htm.ID]int, len(containers))
	f.replica = make(map[htm.ID]int, len(containers))
	f.assigned = make(map[int][]htm.ID)
	n := len(f.nodes)
	for i, c := range containers {
		p := i % n
		f.primary[c] = p
		f.assigned[p] = append(f.assigned[p], c)
		if replicate && n > 1 {
			f.replica[c] = (p + 1) % n
		} else {
			f.replica[c] = -1
		}
	}
}

// Assigned returns the containers a node currently owns.
func (f *Fabric) Assigned(node int) []htm.ID {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]htm.ID(nil), f.assigned[node]...)
}

// Owner returns the node currently serving a container, or -1.
func (f *Fabric) Owner(c htm.ID) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if p, ok := f.primary[c]; ok {
		return p
	}
	return -1
}

// Fail kills a node and promotes replicas: every container whose primary
// was the dead node moves to its replica (if it has one). It returns the
// containers that had no replica and are now unavailable.
func (f *Fabric) Fail(node int) (lost []htm.ID) {
	f.nodes[node].dead.Store(true)
	f.mu.Lock()
	defer f.mu.Unlock()
	var keep []htm.ID
	for _, c := range f.assigned[node] {
		r := f.replica[c]
		if r < 0 || !f.nodes[r].Alive() {
			lost = append(lost, c)
			delete(f.primary, c)
			continue
		}
		f.primary[c] = r
		f.assigned[r] = append(f.assigned[r], c)
		f.replica[c] = -1
		keep = append(keep, c)
	}
	_ = keep
	delete(f.assigned, node)
	return lost
}

// TotalBytesRead sums byte counters across nodes.
func (f *Fabric) TotalBytesRead() int64 {
	var n int64
	for _, node := range f.nodes {
		n += node.BytesRead()
	}
	return n
}

// AliveNodes returns the IDs of live nodes.
func (f *Fabric) AliveNodes() []int {
	var out []int
	for _, n := range f.nodes {
		if n.Alive() {
			out = append(out, n.ID)
		}
	}
	return out
}
