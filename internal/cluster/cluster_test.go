package cluster

import (
	"sync"
	"testing"
	"time"

	"sdss/internal/htm"
)

func someContainers(t *testing.T, n int) []htm.ID {
	t.Helper()
	out := make([]htm.ID, 0, n)
	id := htm.FirstAtDepth(5)
	for i := 0; i < n; i++ {
		out = append(out, id+htm.ID(i))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	f, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 3 || len(f.AliveNodes()) != 3 {
		t.Errorf("nodes = %d alive = %d", f.NumNodes(), len(f.AliveNodes()))
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	f, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := someContainers(t, 10)
	f.Partition(cs, false)
	counts := make(map[int]int)
	for _, c := range cs {
		o := f.Owner(c)
		if o < 0 {
			t.Fatalf("container %v unowned", c)
		}
		counts[o]++
	}
	for node, n := range counts {
		if n < 2 || n > 3 {
			t.Errorf("node %d owns %d of 10 containers", node, n)
		}
	}
	if f.Owner(htm.ID(8)) != -1 {
		t.Error("unknown container has an owner")
	}
}

func TestFailWithoutReplication(t *testing.T) {
	f, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := someContainers(t, 6)
	f.Partition(cs, false)
	lost := f.Fail(0)
	if len(lost) != 3 {
		t.Errorf("lost %d containers, want 3 (no replicas)", len(lost))
	}
	for _, c := range lost {
		if f.Owner(c) != -1 {
			t.Error("lost container still owned")
		}
	}
}

func TestFailWithReplicationPromotes(t *testing.T) {
	f, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := someContainers(t, 9)
	f.Partition(cs, true)
	lost := f.Fail(1)
	if len(lost) != 0 {
		t.Errorf("lost %d containers despite replication", len(lost))
	}
	for _, c := range cs {
		o := f.Owner(c)
		if o < 0 || !f.Node(o).Alive() {
			t.Fatalf("container %v has no live owner after failover", c)
		}
	}
	// Double failure loses whatever replicated onto the second dead node.
	f2, _ := New(2, 0)
	f2.Partition(cs, true)
	f2.Fail(0)
	lost2 := f2.Fail(1)
	if len(lost2) != len(cs) {
		t.Errorf("after both nodes die, %d lost, want all %d", len(lost2), len(cs))
	}
}

func TestThrottleRate(t *testing.T) {
	// A node throttled to 100 MB/s must take ~100 ms to read 10 MB, and
	// the byte counter must be exact.
	f, err := New(1, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	n := f.Node(0)
	start := time.Now()
	const chunk = 64 * 1024
	const total = 10e6
	for read := 0; read < total; read += chunk {
		n.Read(chunk)
	}
	elapsed := time.Since(start)
	if n.BytesRead() < total {
		t.Errorf("bytes read = %d", n.BytesRead())
	}
	// Generous bounds: the suite runs packages in parallel, so wall-clock
	// rates compress under contention. The throttle being in effect (not
	// its precision) is what this asserts; experiment E6 measures
	// precision on an idle machine.
	rate := float64(n.BytesRead()) / elapsed.Seconds()
	if rate > 140e6 || rate < 30e6 {
		t.Errorf("throttled rate %.0f MB/s, want ~100", rate/1e6)
	}
}

func TestThrottleConcurrentReadersSerialize(t *testing.T) {
	// Two goroutines sharing one node's disk must sum to the node rate,
	// not double it.
	f, err := New(1, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	n := f.Node(0)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for read := 0; read < 5e6; read += 64 * 1024 {
				n.Read(64 * 1024)
			}
		}()
	}
	wg.Wait()
	rate := float64(n.BytesRead()) / time.Since(start).Seconds()
	if rate > 150e6 {
		t.Errorf("two readers achieved %.0f MB/s through one 100 MB/s disk", rate/1e6)
	}
	if f.TotalBytesRead() != n.BytesRead() {
		t.Error("fabric byte accounting differs from node")
	}
}

func TestUnthrottledReadIsFast(t *testing.T) {
	f, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := f.Node(0)
	start := time.Now()
	for i := 0; i < 100000; i++ {
		n.Read(1024)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("unthrottled reads took %v", elapsed)
	}
}
