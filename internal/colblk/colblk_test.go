package colblk

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// testSpec builds a small record layout exercising every kind and both
// predictors: u64 id, f64 ra/dec, f64 x predicted from ra/dec, f32 mag,
// f32 err predicted from mag's column, u16 plate, u8 class, plus a KNone
// placeholder.
func testSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := NewSpec([]Column{
		{Name: "id", Offset: 0, Kind: KU64},
		{Name: "ra", Offset: 8, Kind: KF64},
		{Name: "dec", Offset: 16, Kind: KF64},
		{Name: "x", Offset: 24, Kind: KF64, Pred: PredVec, Arg: [2]int{1, 2}, Aux: 0},
		{Name: "mag", Offset: 32, Kind: KF32},
		{Name: "err", Offset: 36, Kind: KF32, Pred: PredCol, Arg: [2]int{4}},
		{Name: "plate", Offset: 40, Kind: KU16},
		{Name: "class", Offset: 42, Kind: KU8},
		{Name: "derived", Kind: KNone},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const testRecSize = 43

// makeRecords synthesizes n records matching testSpec with container-like
// locality (narrow ra/dec window, monotone ids, few classes); mutate lets
// tests inject NaN and edge values.
func makeRecords(t *testing.T, n int, seed int64, mutate func(i int, rec []byte)) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n*testRecSize)
	id := uint64(rng.Int63())
	for i := 0; i < n; i++ {
		rec := data[i*testRecSize:]
		id += uint64(rng.Intn(1 << 20))
		binary.LittleEndian.PutUint64(rec[0:], id)
		ra := 180.0 + 3.0*rng.Float64()
		dec := 30.0 + 2.5*rng.Float64()
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(ra))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(dec))
		x := math.Cos(dec*math.Pi/180) * math.Cos(ra*math.Pi/180)
		binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(x))
		mag := float32(14 + 9*rng.Float64())
		binary.LittleEndian.PutUint32(rec[32:], math.Float32bits(mag))
		binary.LittleEndian.PutUint32(rec[36:], math.Float32bits(mag))
		binary.LittleEndian.PutUint16(rec[40:], uint16(rng.Intn(800)))
		rec[42] = byte(rng.Intn(3))
		if mutate != nil {
			mutate(i, rec)
		}
	}
	return data
}

func checkSlab(t *testing.T, spec *Spec, data []byte, n int, slab *Slab) {
	t.Helper()
	if err := slab.Check(data, n, testRecSize); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	spec := testSpec(t)
	for _, n := range []int{0, 1, 7, 500} {
		for seed := int64(1); seed <= 3; seed++ {
			data := makeRecords(t, n, seed, nil)
			slab := spec.Encode(data, n, testRecSize, false)
			checkSlab(t, spec, data, n, slab)
			raw := spec.Encode(data, n, testRecSize, true)
			checkSlab(t, spec, data, n, raw)
		}
	}
}

func TestEncodeSpecialValues(t *testing.T) {
	spec := testSpec(t)
	n := 64
	data := makeRecords(t, n, 42, func(i int, rec []byte) {
		switch i % 8 {
		case 0: // NaN in f64 and f32 columns
			binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(math.NaN()))
			binary.LittleEndian.PutUint32(rec[32:], math.Float32bits(float32(math.NaN())))
		case 1: // negative NaN payload
			binary.LittleEndian.PutUint64(rec[16:], 0xfff8000000000123)
		case 2: // infinities
			binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(math.Inf(1)))
			binary.LittleEndian.PutUint32(rec[36:], math.Float32bits(float32(math.Inf(-1))))
		case 3: // signed zeros
			binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(math.Copysign(0, -1)))
			binary.LittleEndian.PutUint32(rec[32:], math.Float32bits(float32(math.Copysign(0, -1))))
		case 4: // subnormals
			binary.LittleEndian.PutUint64(rec[16:], 1)
		}
	})
	slab := spec.Encode(data, n, testRecSize, false)
	checkSlab(t, spec, data, n, slab)
}

func TestEncodingSelection(t *testing.T) {
	spec := testSpec(t)
	n := 512

	// Constant column → EncConst.
	data := makeRecords(t, n, 7, func(i int, rec []byte) { rec[42] = 2 })
	slab := spec.Encode(data, n, testRecSize, false)
	if got := slab.Blocks[7].Enc; got != EncConst {
		t.Errorf("constant class column encoded as %v, want const", got)
	}

	// Monotone id → delta beats raw by a wide margin.
	data = makeRecords(t, n, 7, nil)
	slab = spec.Encode(data, n, testRecSize, false)
	if got := slab.Blocks[0].Enc; got != EncDelta && got != EncFOR {
		t.Errorf("monotone id column encoded as %v, want delta or for", got)
	}
	if b := &slab.Blocks[0]; b.EncodedBytes() >= n*8 {
		t.Errorf("id column did not compress: %d bytes vs %d raw", b.EncodedBytes(), n*8)
	}

	// err == mag exactly → PredCol residuals are all zero.
	if got := slab.Blocks[5].Enc; got != EncPred {
		t.Errorf("replicated err column encoded as %v, want pred", got)
	}
	if w := slab.Blocks[5].Width; w != 0 {
		t.Errorf("zero-residual pred block has width %d", w)
	}

	// class (3 small distinct values) → 2-bit FOR; dict would spend 24
	// bytes re-stating the values FOR's base+width already imply.
	if got := slab.Blocks[7].Enc; got != EncFOR {
		t.Errorf("class column encoded as %v, want for", got)
	}

	// Dictionary wins when the few distinct values span a huge range:
	// flag-style bitmasks re-planted in the id column.
	data = makeRecords(t, n, 8, func(i int, rec []byte) {
		flags := []uint64{0, 1 << 40, 1 << 62, 1<<40 | 1<<13}
		binary.LittleEndian.PutUint64(rec[0:], flags[i%len(flags)])
	})
	slab = spec.Encode(data, n, testRecSize, false)
	checkSlab(t, spec, data, n, slab)
	if got := slab.Blocks[0].Enc; got != EncDict {
		t.Errorf("sparse bitmask column encoded as %v, want dict", got)
	}

	// Scaled decimals: overwrite mag with 2-decimal values.
	data = makeRecords(t, n, 9, func(i int, rec []byte) {
		v := float32(math.Round(float64(14+i%900)*1.0)/100 + 14)
		binary.LittleEndian.PutUint32(rec[32:], math.Float32bits(v))
	})
	slab = spec.Encode(data, n, testRecSize, false)
	checkSlab(t, spec, data, n, slab)
	if got := slab.Blocks[4].Enc; got != EncScaled && got != EncDict && got != EncFOR {
		t.Errorf("decimal mag column encoded as %v", got)
	}

	// Forced raw: every stored column EncRaw.
	slab = spec.Encode(data, n, testRecSize, true)
	for ci := 0; ci < spec.NumCols(); ci++ {
		want := EncRaw
		if spec.Col(ci).Kind == KNone {
			want = EncNone
		}
		if got := slab.Blocks[ci].Enc; got != want {
			t.Errorf("forced-raw column %d encoded as %v", ci, got)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	spec := testSpec(t)
	for _, n := range []int{0, 1, 33, 500} {
		data := makeRecords(t, n, int64(n)+1, func(i int, rec []byte) {
			if i%5 == 0 {
				binary.LittleEndian.PutUint32(rec[32:], math.Float32bits(float32(math.NaN())))
			}
		})
		slab := spec.Encode(data, n, testRecSize, false)
		buf := slab.AppendTo(nil)
		got, consumed, err := DecodeSlab(spec, n, buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if consumed != len(buf) {
			t.Fatalf("n=%d: consumed %d of %d bytes", n, consumed, len(buf))
		}
		checkSlab(t, spec, data, n, got)

		// Truncation at any prefix must error, not panic or misread.
		for _, cut := range []int{0, 3, len(buf) / 2, len(buf) - 1} {
			if cut >= len(buf) {
				continue
			}
			if _, _, err := DecodeSlab(spec, n, buf[:cut]); err == nil {
				t.Fatalf("n=%d: decode of %d-byte prefix succeeded", n, cut)
			}
		}
	}
}

func TestDecodeRejectsCorruptHeader(t *testing.T) {
	spec := testSpec(t)
	n := 16
	data := makeRecords(t, n, 3, nil)
	buf := spec.Encode(data, n, testRecSize, false).AppendTo(nil)
	for _, mut := range []struct {
		name string
		off  int
		b    byte
	}{
		{"bad encoding", 0, 0xff},
		{"bad width", 1, 80},
		{"bad exponent", 2, 99},
	} {
		c := append([]byte(nil), buf...)
		c[mut.off] = mut.b
		if _, _, err := DecodeSlab(spec, n, c); err == nil {
			t.Errorf("%s: decode succeeded", mut.name)
		}
	}
}

func TestKeyRangeMatchesFloatSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f64Vals := []float64{
		math.Inf(-1), -math.MaxFloat64, -1e10, -18.25, -1, -5e-324,
		math.Copysign(0, -1), 0, 5e-324, 0.5, 1, 17.999999, 18, 18.000001,
		255, 256, 1e10, math.MaxFloat64, math.Inf(1), math.NaN(), -math.Log(-1),
	}
	bounds := []float64{math.Inf(-1), -18.25, -1, 0, 5e-324, 1, 18, 18.000001, 255.5, 1e10, math.Inf(1)}
	for i := 0; i < 200; i++ {
		b := rng.NormFloat64() * 100
		bounds = append(bounds, b)
		f64Vals = append(f64Vals, b, b+rng.NormFloat64())
	}
	for _, kind := range []Kind{KF64, KF32, KU8, KU16, KU64} {
		for _, lo := range bounds {
			for _, hi := range bounds {
				for _, open := range []struct{ lo, hi bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
					kLo, kHi, ok := kind.KeyRange(lo, hi, open.lo, open.hi)
					for _, f := range f64Vals {
						key, v, storable := storedKey(kind, f)
						if !storable {
							continue
						}
						want := cmpIn(v, lo, hi, open.lo, open.hi)
						got := ok && key >= kLo && key <= kHi
						if got != want {
							t.Fatalf("%v KeyRange(%v,%v,%v,%v): value %v (key %#x): got %v want %v",
								kind, lo, hi, open.lo, open.hi, v, key, got, want)
						}
					}
				}
			}
		}
	}
}

// storedKey maps a float64 test value into the kind's domain, returning the
// stored key and the float64 reading a scan would compare.
func storedKey(kind Kind, f float64) (key uint64, v float64, ok bool) {
	switch kind {
	case KF64:
		return key64f(f), f, true
	case KF32:
		f32 := float32(f)
		return uint64(key32f(f32)), float64(f32), true
	case KU8, KU16, KU64:
		maxV := uint64(math.MaxUint64)
		if kind == KU8 {
			maxV = math.MaxUint8
		} else if kind == KU16 {
			maxV = math.MaxUint16
		}
		if math.IsNaN(f) || f < 0 || f >= float64(maxV) {
			return 0, 0, false
		}
		u := uint64(f)
		return u, float64(u), true
	}
	return 0, 0, false
}

func cmpIn(v, lo, hi float64, loOpen, hiOpen bool) bool {
	okLo := v > lo || (!loOpen && v >= lo)
	okHi := v < hi || (!hiOpen && v <= hi)
	return okLo && okHi
}

func TestInfKeysBracketNaN(t *testing.T) {
	for _, kind := range []Kind{KF32, KF64} {
		negInf, posInf, ok := kind.InfKeys()
		if !ok {
			t.Fatalf("%v: no inf keys", kind)
		}
		nanKey, _, _ := storedKey(kind, math.NaN())
		negNaN := key64(0xfff8000000000001)
		if kind == KF32 {
			negNaN = uint64(key32(0xffc00001))
		}
		if nanKey >= negInf && nanKey <= posInf {
			t.Errorf("%v: positive NaN key inside [-Inf,+Inf] key range", kind)
		}
		if negNaN >= negInf && negNaN <= posInf {
			t.Errorf("%v: negative NaN key inside [-Inf,+Inf] key range", kind)
		}
		lo, hi, ok := kind.KeyRange(math.Inf(-1), math.Inf(1), false, false)
		if !ok || lo != negInf || hi != posInf {
			t.Errorf("%v: KeyRange(-Inf,+Inf) = [%#x,%#x] ok=%v, want [%#x,%#x]", kind, lo, hi, ok, negInf, posInf)
		}
	}
}

func TestReaderLazyDecode(t *testing.T) {
	spec := testSpec(t)
	n := 128
	data := makeRecords(t, n, 5, nil)
	slab := spec.Encode(data, n, testRecSize, false)
	r := NewReader()
	r.Reset(slab)
	if r.BytesDecoded() != 0 {
		t.Fatal("bytes decoded before any column access")
	}
	_ = r.Keys(7)
	afterOne := r.BytesDecoded()
	if afterOne <= 0 {
		t.Fatal("decoding a column did not count bytes")
	}
	_ = r.Keys(7)
	if r.BytesDecoded() != afterOne {
		t.Fatal("re-reading a decoded column counted bytes again")
	}
	// A predicted column decodes its inputs too.
	_ = r.Keys(3)
	if r.BytesDecoded() <= afterOne {
		t.Fatal("predicted column decode counted nothing")
	}
	// Values match the raw reads.
	for i := 0; i < n; i++ {
		want := math.Float64frombits(binary.LittleEndian.Uint64(data[i*testRecSize+24:]))
		if got := r.Value(3, i); got != want {
			t.Fatalf("record %d: predicted column decode %v, want %v", i, got, want)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := NewSpec([]Column{
		{Name: "a", Kind: KF32, Pred: PredCol, Arg: [2]int{1}},
		{Name: "b", Kind: KF32, Pred: PredCol, Arg: [2]int{0}},
	}); err == nil {
		t.Error("prediction cycle accepted")
	}
	if _, err := NewSpec([]Column{
		{Name: "a", Kind: KF32, Pred: PredCol, Arg: [2]int{5}},
	}); err == nil {
		t.Error("out-of-range predictor accepted")
	}
	if _, err := NewSpec([]Column{
		{Name: "a", Kind: KF64},
		{Name: "b", Kind: KF32, Pred: PredCol, Arg: [2]int{0}},
	}); err == nil {
		t.Error("kind-mismatched PredCol accepted")
	}
	if _, err := NewSpec([]Column{
		{Name: "a", Kind: KF32, Pred: PredVec, Arg: [2]int{0, 0}},
	}); err == nil {
		t.Error("PredVec on f32 accepted")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testSpec(t).Fingerprint()
	s2, err := NewSpec([]Column{
		{Name: "id", Offset: 0, Kind: KU64},
		{Name: "ra", Offset: 8, Kind: KF64},
		{Name: "dec", Offset: 16, Kind: KF64},
		{Name: "x", Offset: 24, Kind: KF64, Pred: PredVec, Arg: [2]int{1, 2}, Aux: 1}, // Aux changed
		{Name: "mag", Offset: 32, Kind: KF32},
		{Name: "err", Offset: 36, Kind: KF32, Pred: PredCol, Arg: [2]int{4}},
		{Name: "plate", Offset: 40, Kind: KU16},
		{Name: "class", Offset: 42, Kind: KU8},
		{Name: "derived", Kind: KNone},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Fingerprint() == base {
		t.Error("fingerprint ignores predictor component")
	}
}
