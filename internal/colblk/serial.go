package colblk

import (
	"encoding/binary"
	"fmt"
)

// blockHeaderSize is the fixed serialized prefix of one block: encoding,
// width, exponent, reserved byte, dict length, payload length, base.
const blockHeaderSize = 1 + 1 + 1 + 1 + 4 + 4 + 8

// AppendTo serializes the slab's blocks (the spec itself is not stored —
// the container file records the spec fingerprint once).
func (s *Slab) AppendTo(buf []byte) []byte {
	var hdr [blockHeaderSize]byte
	for i := range s.Blocks {
		b := &s.Blocks[i]
		hdr[0] = byte(b.Enc)
		hdr[1] = b.Width
		hdr[2] = b.Ext
		hdr[3] = 0
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.Dict)))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.Payload)))
		binary.LittleEndian.PutUint64(hdr[12:], b.Base)
		buf = append(buf, hdr[:]...)
		for _, d := range b.Dict {
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], d)
			buf = append(buf, w[:]...)
		}
		buf = append(buf, b.Payload...)
	}
	return buf
}

// DecodeSlab parses one slab of n records for the given spec, returning the
// slab and the number of bytes consumed. It validates structure (encoding
// tags, widths, payload sizes) but not content — Check compares decoded
// keys against raw records when the caller wants the full invariant.
func DecodeSlab(spec *Spec, n int, buf []byte) (*Slab, int, error) {
	s := &Slab{Spec: spec, N: n, Blocks: make([]Block, spec.NumCols())}
	off := 0
	for ci := 0; ci < spec.NumCols(); ci++ {
		if off+blockHeaderSize > len(buf) {
			return nil, 0, fmt.Errorf("colblk: truncated block header for column %d", ci)
		}
		h := buf[off:]
		b := Block{
			Enc:   Encoding(h[0]),
			Width: h[1],
			Ext:   h[2],
			Base:  binary.LittleEndian.Uint64(h[12:]),
		}
		dictLen := int(binary.LittleEndian.Uint32(h[4:]))
		payLen := int(binary.LittleEndian.Uint32(h[8:]))
		off += blockHeaderSize
		if b.Enc > EncPred {
			return nil, 0, fmt.Errorf("colblk: column %d: unknown encoding %d", ci, b.Enc)
		}
		if b.Width > 64 || (b.Enc != EncRaw && b.Width > maxPackWidth) {
			return nil, 0, fmt.Errorf("colblk: column %d: width %d out of range", ci, b.Width)
		}
		if dictLen > maxDictSize || (dictLen > 0 && b.Enc != EncDict) {
			return nil, 0, fmt.Errorf("colblk: column %d: unexpected dictionary (%d entries)", ci, dictLen)
		}
		if int(b.Ext) >= len(pow10) {
			return nil, 0, fmt.Errorf("colblk: column %d: scale exponent %d out of range", ci, b.Ext)
		}
		if off+8*dictLen+payLen > len(buf) {
			return nil, 0, fmt.Errorf("colblk: truncated block body for column %d", ci)
		}
		if dictLen > 0 {
			b.Dict = make([]uint64, dictLen)
			for i := range b.Dict {
				b.Dict[i] = binary.LittleEndian.Uint64(buf[off:])
				off += 8
			}
		}
		if err := checkPayload(&b, spec.Col(ci).Kind, n, payLen); err != nil {
			return nil, 0, fmt.Errorf("colblk: column %d: %w", ci, err)
		}
		b.Payload = append([]byte(nil), buf[off:off+payLen]...)
		off += payLen
		s.Blocks[ci] = b
	}
	return s, off, nil
}

// checkPayload verifies the payload length an encoding implies for n
// records, so decode never reads out of bounds.
func checkPayload(b *Block, kind Kind, n, payLen int) error {
	var vals int
	switch b.Enc {
	case EncNone, EncConst:
		if payLen != 0 {
			return fmt.Errorf("%s block carries %d payload bytes", b.Enc, payLen)
		}
		if b.Enc == EncNone && kind != KNone {
			return fmt.Errorf("none block for stored column")
		}
		return nil
	case EncDelta:
		vals = max(n-1, 0)
	case EncDict:
		if len(b.Dict) == 0 && n > 0 {
			return fmt.Errorf("dict block with empty dictionary")
		}
		for i := 1; i < len(b.Dict); i++ {
			if b.Dict[i] <= b.Dict[i-1] {
				return fmt.Errorf("dictionary not strictly sorted")
			}
		}
		vals = n
	case EncRaw:
		if int(b.Width) != kind.Size()*8 {
			return fmt.Errorf("raw width %d for %d-byte kind", b.Width, kind.Size())
		}
		vals = n
	default:
		vals = n
	}
	want := (vals*int(b.Width)+7)/8 + blockPad
	if vals == 0 || b.Width == 0 {
		want = blockPad
	}
	if payLen != want {
		return fmt.Errorf("%s block payload %d bytes, want %d", b.Enc, payLen, want)
	}
	return nil
}
