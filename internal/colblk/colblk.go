// Package colblk implements the compressed column-block codec behind the
// store's COLBLK sidecars: a per-container columnar representation of every
// addressable record attribute, encoded per column with the lightweight
// schemes column stores use for scan-heavy workloads —
//
//   - delta + zig-zag bit-packing for monotone identifier columns
//     (objid, the embedded HTM key);
//   - frame-of-reference bit-packing over an order-preserving integer
//     transform of the float bits for positions and magnitudes (container
//     clustering makes per-container value ranges narrow);
//   - scaled-decimal frame-of-reference where every value round-trips
//     losslessly through a power-of-ten integer;
//   - dictionary encoding for low-cardinality columns (class, flags);
//   - predictive encoding for functionally dependent columns (the Cartesian
//     triplet re-derived from ra/dec, per-band errors vs. the first band),
//     storing only the per-record residual in key space;
//   - raw fixed-width keys as the universal fallback.
//
// Every encoding is lossless by construction: decode reproduces the exact
// stored bit pattern of every value, including NaN payloads and signed
// zeros. Compare kernels never materialize floats at all — all encodings
// decode to the column's key space, an unsigned-integer total order that
// agrees with the IEEE ordering on non-NaN values (see key64), so predicate
// intervals translate to single unsigned range tests.
//
// Like package catalog and package fits, colblk is a sanctioned raw-byte
// layer: it reads record bytes at fixed offsets (skylint's rawoffset
// analyzer exempts it) so the rest of the tree never has to.
package colblk

import (
	"fmt"
	"math"

	"sdss/internal/sphere"
)

// Kind is the wire encoding of one fixed-offset column, mirroring the
// catalog's field kinds. KNone marks an attribute with no stored bytes (a
// derived attribute); it occupies a column slot so slab indexes can stay
// aligned with attribute IDs, but encodes to nothing.
type Kind uint8

const (
	KNone Kind = iota
	KU8
	KU16
	KU64
	KF32
	KF64
)

// Size returns the stored width of the kind in bytes (0 for KNone).
func (k Kind) Size() int {
	switch k {
	case KU8:
		return 1
	case KU16:
		return 2
	case KF32:
		return 4
	case KU64, KF64:
		return 8
	default:
		return 0
	}
}

// Float reports whether the kind stores IEEE float bits.
func (k Kind) Float() bool { return k == KF32 || k == KF64 }

// Predictor names a cross-column prediction scheme. A predicted column
// stores per-record residuals in key space instead of values; the encoder
// uses it only when the residuals pack tighter than direct encoding, so a
// predictor that turns out wrong costs nothing but the attempt.
type Predictor uint8

const (
	// PredNone encodes the column directly.
	PredNone Predictor = iota
	// PredCol predicts each record's value as the value of another column
	// of the same kind (Arg[0]): the encoding for replicated or strongly
	// correlated columns.
	PredCol
	// PredVec predicts a float64 column as one component (Aux: 0=x, 1=y,
	// 2=z) of the unit vector sphere.FromRADec(Arg[0], Arg[1]) — the
	// functional dependency catalog.SetPos establishes between the stored
	// Cartesian triplet and ra/dec.
	PredVec
)

// Column describes one fixed-offset column of a record layout, plus its
// optional predictor. Columns are identified by their index in the Spec;
// predictors reference other columns by that index.
type Column struct {
	Name   string
	Offset int
	Kind   Kind
	Pred   Predictor
	Arg    [2]int
	Aux    uint8
}

// Spec is a validated, immutable column layout shared by every slab of a
// store: the contract between encoder, decoder, and the COLBLK file format.
type Spec struct {
	cols []Column
}

// NewSpec validates a column layout: predictor arguments must reference
// in-range, kind-compatible columns, and the prediction graph must be
// acyclic (decode resolves predictor inputs recursively).
func NewSpec(cols []Column) (*Spec, error) {
	for i, c := range cols {
		switch c.Pred {
		case PredNone:
		case PredCol:
			a := c.Arg[0]
			if a < 0 || a >= len(cols) || a == i {
				return nil, fmt.Errorf("colblk: column %d (%s): PredCol argument %d out of range", i, c.Name, a)
			}
			if cols[a].Kind != c.Kind {
				return nil, fmt.Errorf("colblk: column %d (%s): PredCol source kind mismatch", i, c.Name)
			}
		case PredVec:
			if c.Kind != KF64 || c.Aux > 2 {
				return nil, fmt.Errorf("colblk: column %d (%s): PredVec needs a KF64 column and component 0..2", i, c.Name)
			}
			for _, a := range c.Arg {
				if a < 0 || a >= len(cols) || a == i || cols[a].Kind != KF64 {
					return nil, fmt.Errorf("colblk: column %d (%s): PredVec argument %d invalid", i, c.Name, a)
				}
			}
		default:
			return nil, fmt.Errorf("colblk: column %d (%s): unknown predictor %d", i, c.Name, c.Pred)
		}
	}
	s := &Spec{cols: append([]Column(nil), cols...)}
	// Reject prediction cycles: resolve every column's dependency chain.
	state := make([]uint8, len(cols)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int) error
	visit = func(i int) error {
		if state[i] == 2 {
			return nil
		}
		if state[i] == 1 {
			return fmt.Errorf("colblk: prediction cycle through column %d (%s)", i, cols[i].Name)
		}
		state[i] = 1
		for _, a := range s.predArgs(i) {
			if err := visit(a); err != nil {
				return err
			}
		}
		state[i] = 2
		return nil
	}
	for i := range cols {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustSpec is NewSpec for statically known layouts.
func MustSpec(cols []Column) *Spec {
	s, err := NewSpec(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// predArgs returns the column indexes a column's predictor reads.
func (s *Spec) predArgs(i int) []int {
	switch s.cols[i].Pred {
	case PredCol:
		return s.cols[i].Arg[:1]
	case PredVec:
		return s.cols[i].Arg[:2]
	default:
		return nil
	}
}

// NumCols returns the number of column slots (including KNone placeholders).
func (s *Spec) NumCols() int { return len(s.cols) }

// Col returns one column description.
func (s *Spec) Col(i int) Column { return s.cols[i] }

// CoveredBytes returns the raw per-record footprint of the covered columns:
// the denominator of the compressed-versus-raw ratio.
func (s *Spec) CoveredBytes() int {
	n := 0
	for _, c := range s.cols {
		n += c.Kind.Size()
	}
	return n
}

// Fingerprint hashes the layout-relevant parts of the spec (offsets, kinds,
// predictors — not names). A persisted COLBLK file records it; a mismatch on
// reload means the schema or the codec's prediction wiring changed and the
// sidecar must rebuild.
func (s *Spec) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(s.cols)))
	for _, c := range s.cols {
		mix(uint64(c.Offset))
		mix(uint64(c.Kind)<<16 | uint64(c.Pred)<<8 | uint64(c.Aux))
		mix(uint64(int64(c.Arg[0]))<<32 | uint64(uint32(int64(c.Arg[1]))))
	}
	return h
}

// key64 maps float64 bit patterns to an unsigned total order that agrees
// with IEEE ordering on non-NaN values: negative floats (sign bit set) map
// below positives by complementing, positives set the top bit. -0 orders
// immediately below +0, -Inf above every negative NaN, +Inf below every
// positive NaN — so a [keyLo, keyHi] range test over real bounds excludes
// NaN automatically, matching IEEE comparison semantics.
func key64(bits uint64) uint64 {
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// unkey64 inverts key64.
func unkey64(k uint64) uint64 {
	if k&(1<<63) != 0 {
		return k ^ (1 << 63)
	}
	return ^k
}

// key64f/key32f are key64/key32 over values instead of bit patterns.
func key64f(v float64) uint64 { return key64(math.Float64bits(v)) }

func key32f(v float32) uint32 { return key32(math.Float32bits(v)) }

// key32/unkey32 are the float32 analogues of key64/unkey64.
func key32(bits uint32) uint32 {
	if bits&(1<<31) != 0 {
		return ^bits
	}
	return bits | 1<<31
}

func unkey32(k uint32) uint32 {
	if k&(1<<31) != 0 {
		return k ^ (1 << 31)
	}
	return ^k
}

// Value converts a key back to the engine's universal float64 value type,
// exactly as catalog.Field.Read renders the underlying bytes.
func (k Kind) Value(key uint64) float64 {
	switch k {
	case KF32:
		return float64(math.Float32frombits(unkey32(uint32(key))))
	case KF64:
		return math.Float64frombits(unkey64(key))
	default:
		return float64(key)
	}
}

// InfKeys returns the keys of -Inf and +Inf for a float kind: keys outside
// [negInf, posInf] are NaN bit patterns. ok is false for integer kinds,
// which store no NaNs.
func (k Kind) InfKeys() (negInf, posInf uint64, ok bool) {
	switch k {
	case KF32:
		return uint64(key32(math.Float32bits(float32(math.Inf(-1))))),
			uint64(key32(math.Float32bits(float32(math.Inf(1))))), true
	case KF64:
		return key64(math.Float64bits(math.Inf(-1))),
			key64(math.Float64bits(math.Inf(1))), true
	default:
		return 0, 0, false
	}
}

// predict computes the predicted key vector for column ci from the already
// materialized keys of its predictor inputs. Both the encoder and the
// decoder call it — with identical inputs, by construction — so residuals
// cancel exactly.
func (s *Spec) predict(ci int, n int, keysOf func(int) []uint64, dst []uint64) []uint64 {
	dst = growU64(dst, n)
	c := s.cols[ci]
	switch c.Pred {
	case PredCol:
		copy(dst, keysOf(c.Arg[0])[:n])
	case PredVec:
		ra := keysOf(c.Arg[0])
		dec := keysOf(c.Arg[1])
		for i := 0; i < n; i++ {
			v := sphere.FromRADec(KF64.Value(ra[i]), KF64.Value(dec[i]))
			comp := v.X
			switch c.Aux {
			case 1:
				comp = v.Y
			case 2:
				comp = v.Z
			}
			dst[i] = key64(math.Float64bits(comp))
		}
	}
	return dst
}

// growU64 returns a slice of length n, reusing buf's storage when possible.
func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]uint64, n)
}
