package colblk

import (
	"fmt"
)

// Reader materializes slab columns into key vectors on demand, reusing its
// scratch buffers across containers: a scan worker keeps one Reader and
// Resets it per slab, decoding only the columns the query touches.
// Predictor inputs decode recursively (the spec's acyclicity guarantee
// bounds the recursion).
type Reader struct {
	slab    *Slab
	keys    [][]uint64
	done    []bool
	pred    []uint64
	decoded int64
}

// NewReader returns an empty reader; call Reset before Keys.
func NewReader() *Reader { return &Reader{} }

// Reset points the reader at a slab, invalidating previously decoded
// columns but keeping their buffers.
func (r *Reader) Reset(s *Slab) {
	r.slab = s
	if cap(r.keys) < s.Spec.NumCols() {
		r.keys = make([][]uint64, s.Spec.NumCols())
		r.done = make([]bool, s.Spec.NumCols())
	}
	r.keys = r.keys[:s.Spec.NumCols()]
	r.done = r.done[:s.Spec.NumCols()]
	for i := range r.done {
		r.done[i] = false
	}
}

// BytesDecoded returns the cumulative encoded bytes materialized since the
// reader was created — the scan path's bytes_decoded counter. Dictionary
// probes that skip a block entirely never add to it.
func (r *Reader) BytesDecoded() int64 { return r.decoded }

// Keys returns column ci's key vector, decoding it (and any predictor
// inputs) on first use. The returned slice is valid until the next Reset.
func (r *Reader) Keys(ci int) []uint64 {
	if r.done[ci] {
		return r.keys[ci]
	}
	b := &r.slab.Blocks[ci]
	n := r.slab.N
	dst := growU64(r.keys[ci], n)
	switch b.Enc {
	case EncNone:
		for i := range dst {
			dst[i] = 0
		}
	case EncConst:
		for i := range dst {
			dst[i] = b.Base
		}
	case EncRaw, EncFOR:
		unpackBits(b.Payload, n, b.Base, int(b.Width), dst)
	case EncDelta:
		if n > 0 {
			unpackBits(b.Payload, n-1, 0, int(b.Width), dst[1:])
			prev := b.Base
			dst[0] = prev
			for i := 1; i < n; i++ {
				prev += uint64(unzigzag(dst[i]))
				dst[i] = prev
			}
		}
	case EncDict:
		unpackBits(b.Payload, n, 0, int(b.Width), dst)
		for i, c := range dst {
			dst[i] = b.Dict[c]
		}
	case EncScaled:
		unpackBits(b.Payload, n, b.Base, int(b.Width), dst)
		kind := r.slab.Spec.Col(ci).Kind
		m := pow10[b.Ext]
		for i, u := range dst {
			dst[i] = scaledKey(int64(u), m, kind)
		}
	case EncPred:
		r.pred = r.slab.Spec.predict(ci, n, r.Keys, r.pred)
		unpackBits(b.Payload, n, 0, int(b.Width), dst)
		for i, z := range dst {
			dst[i] = r.pred[i] + uint64(unzigzag(z))
		}
	}
	r.keys[ci] = dst
	r.done[ci] = true
	r.decoded += int64(b.EncodedBytes())
	return dst
}

// Value returns record i's column ci as a float64, decoding the column on
// first use.
func (r *Reader) Value(ci, i int) float64 {
	return r.slab.Spec.Col(ci).Kind.Value(r.Keys(ci)[i])
}

// KeyBounds returns conservative bounds on every key the block can decode
// to, computed from the block header alone — no codes are unpacked. The
// scan path probes them (and, for dictionaries, the sorted key set itself)
// to dismiss whole blocks whose key range cannot intersect a predicate.
// ok=false means the encoding carries no cheap bounds (delta and predicted
// blocks would need a decode to know their extremes).
func (b *Block) KeyBounds(kind Kind) (lo, hi uint64, ok bool) {
	switch b.Enc {
	case EncNone:
		return 0, 0, true
	case EncConst:
		return b.Base, b.Base, true
	case EncRaw, EncFOR:
		if b.Width >= 64 {
			return 0, 0, false
		}
		return b.Base, b.Base + (uint64(1)<<b.Width - 1), true
	case EncDict:
		if len(b.Dict) == 0 {
			return 0, 0, false
		}
		return b.Dict[0], b.Dict[len(b.Dict)-1], true
	case EncScaled:
		if b.Width >= 64 {
			return 0, 0, false
		}
		// Keys are monotone in the packed scaled integer (s/m is monotone
		// in s, and the key transform is monotone over non-NaN values), so
		// the packed extremes bound the key range.
		m := pow10[b.Ext]
		sLo := int64(b.Base)
		sHi := sLo + int64(uint64(1)<<b.Width-1)
		return scaledKey(sLo, m, kind), scaledKey(sHi, m, kind), true
	default:
		return 0, 0, false
	}
}

// scaledKey rebuilds the key of the scaled integer s/m at the kind's
// precision — the exact inverse of encodeScaled's round-trip check.
func scaledKey(s int64, m float64, kind Kind) uint64 {
	v := float64(s) / m
	if kind == KF32 {
		return uint64(key32f(float32(v)))
	}
	return key64f(v)
}

// Check verifies a slab against the raw records it claims to encode: every
// column must decode to exactly the keys extracted from the record bytes.
// It is the COLBLK analogue of store.CheckZone's invariant sweep.
func (s *Slab) Check(data []byte, n, recSize int) error {
	if n != s.N {
		return fmt.Errorf("colblk: slab covers %d records, container holds %d", s.N, n)
	}
	if len(s.Blocks) != s.Spec.NumCols() {
		return fmt.Errorf("colblk: slab has %d blocks for %d columns", len(s.Blocks), s.Spec.NumCols())
	}
	r := NewReader()
	r.Reset(s)
	var want []uint64
	for ci := 0; ci < s.Spec.NumCols(); ci++ {
		if s.Spec.Col(ci).Kind == KNone {
			continue
		}
		got := r.Keys(ci)
		want = s.Spec.extractKeys(data, n, recSize, ci, want)
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				return fmt.Errorf("colblk: column %d (%s) record %d: decoded key %#x, raw key %#x",
					ci, s.Spec.Col(ci).Name, i, got[i], want[i])
			}
		}
	}
	return nil
}
