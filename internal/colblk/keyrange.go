package colblk

import "math"

// KeyRange translates a predicate interval on a column — float64 bounds
// with open/closed endpoints, exactly as the bounds analyzer produces them —
// into the column's key domain: k is in [kLo, kHi] if and only if the
// stored value v it decodes to satisfies the interval under float64
// comparison (`lo <(=) float64(v) <(=) hi`). ok=false means no storable
// value satisfies the interval, so the block matches nothing.
//
// NaN values always fall outside the returned range (their keys sit outside
// [key(-Inf), key(+Inf)]), matching IEEE comparisons returning false — the
// nansafe convention the row path gets for free from Go's < operator.
//
// Because stored kinds are narrower than the float64 bound (float32
// rounding, integer plateaus above 2^53), the mapping computes the exact
// preimage: the least representable value whose float64 reading satisfies
// the lower test, and the greatest satisfying the upper. Signed zeros fall
// out of the same numeric walk (-0 >= 0 holds, so a lower bound of 0
// admits -0's key).
func (k Kind) KeyRange(lo, hi float64, loOpen, hiOpen bool) (kLo, kHi uint64, ok bool) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, 0, false
	}
	switch k {
	case KF64:
		kLo, ok = f64KeyCeil(lo, loOpen)
		if !ok {
			return 0, 0, false
		}
		kHi, ok = f64KeyFloor(hi, hiOpen)
	case KF32:
		kLo, ok = f32KeyCeil(lo, loOpen)
		if !ok {
			return 0, 0, false
		}
		kHi, ok = f32KeyFloor(hi, hiOpen)
	case KU8, KU16, KU64:
		maxV := uint64(math.MaxUint64)
		switch k {
		case KU8:
			maxV = math.MaxUint8
		case KU16:
			maxV = math.MaxUint16
		}
		kLo, ok = intKeyCeil(lo, loOpen, maxV)
		if !ok {
			return 0, 0, false
		}
		kHi, ok = intKeyFloor(hi, hiOpen, maxV)
	default:
		return 0, 0, false
	}
	if !ok || kLo > kHi {
		return 0, 0, false
	}
	return kLo, kHi, true
}

// f64KeyCeil returns the smallest float64 key whose value satisfies
// `v > lo` (open) or `v >= lo` (closed); ok=false if none does.
func f64KeyCeil(lo float64, open bool) (uint64, bool) {
	sat := func(k uint64) bool {
		v := math.Float64frombits(unkey64(k))
		if open {
			return v > lo
		}
		return v >= lo
	}
	minKey := key64f(math.Inf(-1))
	maxKey := key64f(math.Inf(1))
	k := key64f(lo)
	if math.IsInf(lo, -1) {
		k = minKey
	} else if math.IsInf(lo, 1) {
		k = maxKey
	}
	// key64f(lo) is an exact representation of lo, so at most the signed
	// zeros or an open endpoint separate it from the boundary.
	for k > minKey && sat(k-1) {
		k--
	}
	for !sat(k) {
		if k == maxKey {
			return 0, false
		}
		k++
	}
	return k, true
}

// f64KeyFloor mirrors f64KeyCeil for `v < hi` / `v <= hi`.
func f64KeyFloor(hi float64, open bool) (uint64, bool) {
	sat := func(k uint64) bool {
		v := math.Float64frombits(unkey64(k))
		if open {
			return v < hi
		}
		return v <= hi
	}
	minKey := key64f(math.Inf(-1))
	maxKey := key64f(math.Inf(1))
	k := key64f(hi)
	if math.IsInf(hi, -1) {
		k = minKey
	} else if math.IsInf(hi, 1) {
		k = maxKey
	}
	for k < maxKey && sat(k+1) {
		k++
	}
	for !sat(k) {
		if k == minKey {
			return 0, false
		}
		k--
	}
	return k, true
}

// f32KeyCeil finds the smallest float32 key whose float64 reading satisfies
// the lower test. float32(lo) rounds to nearest, so the walk moves at most
// a couple of ulps.
func f32KeyCeil(lo float64, open bool) (uint64, bool) {
	sat := func(k uint32) bool {
		v := float64(math.Float32frombits(unkey32(k)))
		if open {
			return v > lo
		}
		return v >= lo
	}
	minKey := key32f(float32(math.Inf(-1)))
	maxKey := key32f(float32(math.Inf(1)))
	k := key32f(float32(lo)) // ±Inf for out-of-range lo, which the walk corrects
	if k < minKey {
		k = minKey
	} else if k > maxKey {
		k = maxKey
	}
	for k > minKey && sat(k-1) {
		k--
	}
	for !sat(k) {
		if k == maxKey {
			return 0, false
		}
		k++
	}
	return uint64(k), true
}

// f32KeyFloor mirrors f32KeyCeil for the upper test.
func f32KeyFloor(hi float64, open bool) (uint64, bool) {
	sat := func(k uint32) bool {
		v := float64(math.Float32frombits(unkey32(k)))
		if open {
			return v < hi
		}
		return v <= hi
	}
	minKey := key32f(float32(math.Inf(-1)))
	maxKey := key32f(float32(math.Inf(1)))
	k := key32f(float32(hi))
	if k < minKey {
		k = minKey
	} else if k > maxKey {
		k = maxKey
	}
	for k < maxKey && sat(k+1) {
		k++
	}
	for !sat(k) {
		if k == minKey {
			return 0, false
		}
		k--
	}
	return uint64(k), true
}

// intKeyCeil returns the smallest v in [0, maxV] with float64(v) > lo
// (open) or >= lo (closed). Above 2^53 several integers share one float64
// reading, so the boundary walks the rounding plateau (at most 2^11 steps
// for uint64 — plan-time cost only).
func intKeyCeil(lo float64, open bool, maxV uint64) (uint64, bool) {
	sat := func(v uint64) bool {
		if open {
			return float64(v) > lo
		}
		return float64(v) >= lo
	}
	v := intApprox(lo, maxV)
	for v > 0 && sat(v-1) {
		v--
	}
	for !sat(v) {
		if v == maxV {
			return 0, false
		}
		v++
	}
	return v, true
}

// intKeyFloor mirrors intKeyCeil for the upper test.
func intKeyFloor(hi float64, open bool, maxV uint64) (uint64, bool) {
	sat := func(v uint64) bool {
		if open {
			return float64(v) < hi
		}
		return float64(v) <= hi
	}
	v := intApprox(hi, maxV)
	for v < maxV && sat(v+1) {
		v++
	}
	for !sat(v) {
		if v == 0 {
			return 0, false
		}
		v--
	}
	return v, true
}

// intApprox converts a float64 to a nearby uint64 in [0, maxV], clamping
// instead of relying on Go's implementation-defined out-of-range
// conversion.
func intApprox(f float64, maxV uint64) uint64 {
	if !(f > 0) { // also catches NaN, excluded by KeyRange
		return 0
	}
	if f >= float64(maxV) {
		return maxV
	}
	return uint64(f)
}
