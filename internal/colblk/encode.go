package colblk

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
)

// Encoding identifies how one column block packs its keys.
type Encoding uint8

const (
	// EncNone is the block of a KNone column: no stored bytes.
	EncNone Encoding = iota
	// EncConst: every key equals Base; no payload.
	EncConst
	// EncRaw: keys at the kind's fixed width, little-endian.
	EncRaw
	// EncFOR: frame of reference — Width-bit offsets from Base (the
	// minimum key).
	EncFOR
	// EncDelta: Base is the first key; the payload packs zig-zag deltas
	// between consecutive keys at Width bits.
	EncDelta
	// EncDict: Dict holds the sorted distinct keys; the payload packs
	// dictionary codes at Width bits.
	EncDict
	// EncScaled: every value equals an integer divided by 10^Ext; the
	// payload packs Width-bit offsets of that integer from Base
	// (interpreted as the minimum integer, two's complement).
	EncScaled
	// EncPred: the payload packs zig-zag residuals between each key and
	// the predictor's key at Width bits.
	EncPred
)

func (e Encoding) String() string {
	switch e {
	case EncNone:
		return "none"
	case EncConst:
		return "const"
	case EncRaw:
		return "raw"
	case EncFOR:
		return "for"
	case EncDelta:
		return "delta"
	case EncDict:
		return "dict"
	case EncScaled:
		return "scaled"
	case EncPred:
		return "pred"
	default:
		return "invalid"
	}
}

// maxPackWidth bounds packed widths so every unpack is a single unaligned
// 64-bit load: a Width-bit value shifted by at most 7 bits must fit in 64.
const maxPackWidth = 56

// maxDictSize caps dictionary encoding at byte-wide codes.
const maxDictSize = 256

// blockPad is appended to every packed payload so unpack may always read a
// full 8-byte word at the last value's byte offset.
const blockPad = 8

// Block is one encoded column of one container slab.
type Block struct {
	Enc     Encoding
	Width   uint8
	Ext     uint8 // EncScaled: the power-of-ten exponent
	Base    uint64
	Dict    []uint64 // EncDict only: sorted distinct keys
	Payload []byte
}

// EncodedBytes returns the block's serialized footprint (header + dict +
// payload): the numerator of the compressed-versus-raw ratio.
func (b *Block) EncodedBytes() int {
	return blockHeaderSize + 8*len(b.Dict) + len(b.Payload)
}

// Slab is the column-block form of one container's records: one block per
// spec column, all of length N.
type Slab struct {
	Spec   *Spec
	N      int
	Blocks []Block
}

// EncodedBytes sums the serialized footprint of every block.
func (s *Slab) EncodedBytes() int {
	n := 0
	for i := range s.Blocks {
		n += s.Blocks[i].EncodedBytes()
	}
	return n
}

// RawBytes is the uncompressed footprint of the covered columns for the
// slab's record count.
func (s *Slab) RawBytes() int { return s.N * s.Spec.CoveredBytes() }

// extractKeys gathers column ci's keys from n records of recSize bytes.
func (s *Spec) extractKeys(data []byte, n, recSize, ci int, dst []uint64) []uint64 {
	dst = growU64(dst, n)
	c := s.cols[ci]
	off := c.Offset
	switch c.Kind {
	case KU8:
		for i := 0; i < n; i++ {
			dst[i] = uint64(data[i*recSize+off])
		}
	case KU16:
		for i := 0; i < n; i++ {
			dst[i] = uint64(binary.LittleEndian.Uint16(data[i*recSize+off:]))
		}
	case KU64:
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint64(data[i*recSize+off:])
		}
	case KF32:
		for i := 0; i < n; i++ {
			dst[i] = uint64(key32(binary.LittleEndian.Uint32(data[i*recSize+off:])))
		}
	case KF64:
		for i := 0; i < n; i++ {
			dst[i] = key64(binary.LittleEndian.Uint64(data[i*recSize+off:]))
		}
	}
	return dst
}

// Encode builds the column-block slab for n records. raw forces EncRaw for
// every stored column — the compression-off arm of the kernel ablation,
// which keeps the kernel scan path identical while isolating the codec's
// contribution.
func (s *Spec) Encode(data []byte, n, recSize int, raw bool) *Slab {
	slab := &Slab{Spec: s, N: n, Blocks: make([]Block, len(s.cols))}
	keys := make([][]uint64, len(s.cols))
	keysOf := func(ci int) []uint64 { return keys[ci] }
	var pred []uint64
	for ci, c := range s.cols {
		if c.Kind == KNone {
			slab.Blocks[ci] = Block{Enc: EncNone}
			continue
		}
		keys[ci] = s.extractKeys(data, n, recSize, ci, nil)
		if raw {
			slab.Blocks[ci] = encodeRaw(keys[ci], c.Kind)
			continue
		}
		pred = pred[:0]
		if c.Pred != PredNone {
			pred = s.predict(ci, n, keysOf, pred)
		}
		slab.Blocks[ci] = encodeKeys(keys[ci], c.Kind, pred)
	}
	return slab
}

// encodeKeys picks the cheapest applicable encoding for one key vector.
// Candidates are tried in decode-cost order so byte ties go to the faster
// scheme.
func encodeKeys(keys []uint64, kind Kind, pred []uint64) Block {
	n := len(keys)
	if n == 0 {
		return Block{Enc: EncConst}
	}
	minK, maxK := keys[0], keys[0]
	constant := true
	ascending := true
	for i, k := range keys {
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
		if k != keys[0] {
			constant = false
		}
		if i > 0 && k < keys[i-1] {
			ascending = false
		}
	}
	if constant {
		return Block{Enc: EncConst, Base: keys[0]}
	}

	best := encodeRaw(keys, kind)
	bestCost := best.EncodedBytes()
	consider := func(b Block, ok bool) {
		if ok {
			if c := b.EncodedBytes(); c < bestCost {
				best, bestCost = b, c
			}
		}
	}

	// Frame of reference over [minK, maxK].
	if w := bits.Len64(maxK - minK); w <= maxPackWidth {
		consider(Block{Enc: EncFOR, Width: uint8(w), Base: minK,
			Payload: packBits(keys, minK, w)}, true)
	}

	// Sequential deltas: only profitable (and only attempted) on sorted
	// keys, where zig-zag deltas are small positives.
	if ascending {
		consider(encodeDelta(keys))
	}

	// Dictionary of distinct keys.
	consider(encodeDict(keys))

	// Scaled decimal for float kinds.
	if kind.Float() {
		consider(encodeScaled(keys, kind))
	}

	// Predictor residuals.
	if len(pred) == n {
		consider(encodePred(keys, pred))
	}
	return best
}

// encodeRaw packs keys at the kind's natural width.
func encodeRaw(keys []uint64, kind Kind) Block {
	w := kind.Size() * 8
	return Block{Enc: EncRaw, Width: uint8(w), Payload: packBits(keys, 0, w)}
}

func encodeDelta(keys []uint64) (Block, bool) {
	var maxZZ uint64
	for i := 1; i < len(keys); i++ {
		if z := zigzag(int64(keys[i] - keys[i-1])); z > maxZZ {
			maxZZ = z
		}
	}
	w := bits.Len64(maxZZ)
	if w > maxPackWidth {
		return Block{}, false
	}
	deltas := make([]uint64, len(keys)-1)
	for i := 1; i < len(keys); i++ {
		deltas[i-1] = zigzag(int64(keys[i] - keys[i-1]))
	}
	return Block{Enc: EncDelta, Width: uint8(w), Base: keys[0],
		Payload: packBits(deltas, 0, w)}, true
}

func encodeDict(keys []uint64) (Block, bool) {
	// Distinct keys via a fixed open-addressed probe table instead of a
	// map: encodeDict runs as a trial for every column of every container,
	// and per-trial map allocations dominated whole-store build cost.
	const tableSize = 512 // power of two, > 2*maxDictSize for short probes
	var table [tableSize]uint64
	var used [tableSize]bool
	distinct := 0
	for _, k := range keys {
		h := (k * 0x9E3779B97F4A7C15) >> (64 - 9)
		for used[h] && table[h] != k {
			h = (h + 1) & (tableSize - 1)
		}
		if !used[h] {
			used[h] = true
			table[h] = k
			if distinct++; distinct > maxDictSize {
				return Block{}, false
			}
		}
	}
	dict := make([]uint64, 0, distinct)
	for i, u := range used {
		if u {
			dict = append(dict, table[i])
		}
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	w := bits.Len64(uint64(len(dict) - 1))
	codes := make([]uint64, len(keys))
	for i, k := range keys {
		codes[i] = uint64(sort.Search(len(dict), func(j int) bool { return dict[j] >= k }))
	}
	return Block{Enc: EncDict, Width: uint8(w), Dict: dict,
		Payload: packBits(codes, 0, w)}, true
}

// pow10 holds the exact powers of ten scaled-decimal encoding may use:
// beyond 10^7 the integer range stops paying against plain FOR.
var pow10 = [8]float64{1, 10, 100, 1000, 10000, 100000, 1000000, 10000000}

func encodeScaled(keys []uint64, kind Kind) (Block, bool) {
	// Find the smallest exponent under which every value is exactly a
	// scaled integer and division reproduces the stored bits.
	ints := make([]int64, len(keys))
exp:
	for e := 0; e < len(pow10); e++ {
		m := pow10[e]
		for i, k := range keys {
			v := kind.Value(k)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Block{}, false
			}
			s := math.Round(v * m)
			if math.Abs(s) >= 1<<53 {
				return Block{}, false
			}
			if !scaledRoundTrips(s, m, k, kind) {
				continue exp
			}
			ints[i] = int64(s)
		}
		minI, maxI := ints[0], ints[0]
		for _, v := range ints {
			if v < minI {
				minI = v
			}
			if v > maxI {
				maxI = v
			}
		}
		w := bits.Len64(uint64(maxI - minI))
		if w > maxPackWidth {
			return Block{}, false
		}
		us := make([]uint64, len(ints))
		for i, v := range ints {
			us[i] = uint64(v - minI)
		}
		return Block{Enc: EncScaled, Width: uint8(w), Ext: uint8(e),
			Base: uint64(minI), Payload: packBits(us, 0, w)}, true
	}
	return Block{}, false
}

// scaledRoundTrips verifies that s/m reproduces the key's exact bit
// pattern under the kind's precision.
func scaledRoundTrips(s, m float64, key uint64, kind Kind) bool {
	if kind == KF32 {
		return key32(math.Float32bits(float32(s/m))) == uint32(key)
	}
	return key64(math.Float64bits(s/m)) == key
}

func encodePred(keys, pred []uint64) (Block, bool) {
	var maxZZ uint64
	for i, k := range keys {
		if z := zigzag(int64(k - pred[i])); z > maxZZ {
			maxZZ = z
		}
	}
	w := bits.Len64(maxZZ)
	if w > maxPackWidth {
		return Block{}, false
	}
	res := make([]uint64, len(keys))
	for i, k := range keys {
		res[i] = zigzag(int64(k - pred[i]))
	}
	return Block{Enc: EncPred, Width: uint8(w), Payload: packBits(res, 0, w)}, true
}

// zigzag folds signed deltas into small unsigned values.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// packBits writes (v - base) for each value at w bits, little-endian bit
// order, with blockPad trailing zero bytes so unpackBits can always load a
// whole word. w must be ≤ maxPackWidth or a multiple of 8 up to 64 (the
// EncRaw widths), and every v-base must fit in w bits.
func packBits(vals []uint64, base uint64, w int) []byte {
	out := make([]byte, (len(vals)*w+7)/8+blockPad)
	if w == 0 {
		return out
	}
	if w == 64 {
		for i, v := range vals {
			binary.LittleEndian.PutUint64(out[i*8:], v-base)
		}
		return out
	}
	bit := 0
	for _, v := range vals {
		off := bit >> 3
		cur := binary.LittleEndian.Uint64(out[off:])
		binary.LittleEndian.PutUint64(out[off:], cur|(v-base)<<uint(bit&7))
		bit += w
	}
	return out
}

// unpackBits reads n w-bit values into dst, adding base. Payload must carry
// blockPad slack past the packed bits.
func unpackBits(payload []byte, n int, base uint64, w int, dst []uint64) {
	if w == 0 {
		for i := 0; i < n; i++ {
			dst[i] = base
		}
		return
	}
	if w == 64 {
		for i := 0; i < n; i++ {
			dst[i] = base + binary.LittleEndian.Uint64(payload[i*8:])
		}
		return
	}
	mask := uint64(1)<<uint(w) - 1
	bit := 0
	for i := 0; i < n; i++ {
		word := binary.LittleEndian.Uint64(payload[bit>>3:])
		dst[i] = base + (word>>uint(bit&7))&mask
		bit += w
	}
}
