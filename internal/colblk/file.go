package colblk

import (
	"encoding/binary"
)

// COLBLK sidecar file format. The store persists one sidecar per slice
// directory: a fixed prologue (magic, format version, column-spec
// fingerprint, container count) followed by one entry per container —
// trixel ID, record count, slab length, FNV-1a checksum, then the slab
// bytes from Slab.AppendTo. The byte layout lives here, next to the slab
// codec it frames, so the store addresses the format only through these
// helpers.

const (
	// FileMagic opens every COLBLK sidecar.
	FileMagic = "SDSSCBLK"
	// FileVersion is the current sidecar format version; readers reject
	// any other value and let slabs rebuild from the records.
	FileVersion = 1

	fileHdrLen   = 8 + 4 + 8 + 4
	fileEntryLen = 8 + 8 + 4 + 8
)

// FileEntry is one container's parsed sidecar entry.
type FileEntry struct {
	ID      uint64 // trixel ID the slab belongs to
	Records int    // record count the slab was built over
	Slab    []byte // encoded slab bytes (aliases the parsed buffer)
}

// AppendFileHeader appends the sidecar prologue for a store holding
// containers many containers under the given column-spec fingerprint.
func AppendFileHeader(dst []byte, fingerprint uint64, containers int) []byte {
	var hdr [fileHdrLen]byte
	copy(hdr[:8], FileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], FileVersion)
	binary.LittleEndian.PutUint64(hdr[12:], fingerprint)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(containers))
	return append(dst, hdr[:]...)
}

// ParseFileHeader validates the prologue against the expected fingerprint.
// It returns the container count and the prologue length. ok is false on
// any mismatch — magic, version, fingerprint, or truncation — in which
// case the whole file is ignored and slabs rebuild from the records.
func ParseFileHeader(b []byte, fingerprint uint64) (count, n int, ok bool) {
	if len(b) < fileHdrLen || string(b[:8]) != FileMagic {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(b[8:]) != FileVersion {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint64(b[12:]) != fingerprint {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(b[20:])), fileHdrLen, true
}

// AppendFileEntry appends one container entry: the fixed header, the
// checksum over header and slab, then the slab bytes.
func AppendFileEntry(dst []byte, id uint64, records int, slab []byte) []byte {
	var ent [fileEntryLen]byte
	binary.LittleEndian.PutUint64(ent[:], id)
	binary.LittleEndian.PutUint64(ent[8:], uint64(records))
	binary.LittleEndian.PutUint32(ent[16:], uint32(len(slab)))
	binary.LittleEndian.PutUint64(ent[20:], fileSum(ent[:20], slab))
	dst = append(dst, ent[:]...)
	return append(dst, slab...)
}

// ParseFileEntry reads the entry starting at b. It returns the entry and
// the total bytes consumed. ok is false on truncation or checksum
// mismatch; the checksum catches bit flips that would otherwise decode to
// plausible-but-wrong keys and silently corrupt query results.
func ParseFileEntry(b []byte) (ent FileEntry, n int, ok bool) {
	if len(b) < fileEntryLen {
		return FileEntry{}, 0, false
	}
	hdr := b[:fileEntryLen]
	slabLen := int(binary.LittleEndian.Uint32(hdr[16:]))
	if len(b) < fileEntryLen+slabLen {
		return FileEntry{}, 0, false
	}
	slab := b[fileEntryLen : fileEntryLen+slabLen]
	if fileSum(hdr[:20], slab) != binary.LittleEndian.Uint64(hdr[20:]) {
		return FileEntry{}, 0, false
	}
	return FileEntry{
		ID:      binary.LittleEndian.Uint64(hdr),
		Records: int(binary.LittleEndian.Uint64(hdr[8:])),
		Slab:    slab,
	}, fileEntryLen + slabLen, true
}

// fileSum is FNV-1a over an entry header and its slab bytes.
func fileSum(hdr, slab []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range [2][]byte{hdr, slab} {
		for _, b := range p {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}
