package scan

import (
	"context"
	"sync"
	"testing"
	"time"

	"sdss/internal/catalog"
	"sdss/internal/cluster"
	"sdss/internal/load"
	"sdss/internal/skygen"
	"sdss/internal/store"
)

func buildStore(t testing.TB, n int, seed int64) (*store.Sharded, []catalog.PhotoObj) {
	t.Helper()
	photo, spec, err := skygen.GenerateAll(skygen.Default(seed, n), 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := load.NewTarget("", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	return tgt.Photo, photo
}

func TestSingleQuerySeesEverythingOnce(t *testing.T) {
	st, photo := buildStore(t, 3000, 1)
	fabric, err := cluster.New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, fabric)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	var mu sync.Mutex
	seen := make(map[catalog.ObjID]int)
	var obj catalog.PhotoObj
	tk := m.Submit(func(rec []byte) {
		mu.Lock()
		defer mu.Unlock()
		if err := obj.Decode(rec); err != nil {
			t.Error(err)
			return
		}
		seen[obj.ObjID]++
	})
	if err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(photo) {
		t.Fatalf("query saw %d distinct objects, want %d", len(seen), len(photo))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("object %d delivered %d times", id, n)
		}
	}
}

func TestConcurrentQueriesShareOneScan(t *testing.T) {
	st, photo := buildStore(t, 4000, 2)
	fabric, err := cluster.New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, fabric)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	const nQueries = 8
	counts := make([]int64, nQueries)
	var wg sync.WaitGroup
	var mus [nQueries]sync.Mutex
	for q := 0; q < nQueries; q++ {
		q := q
		wg.Add(1)
		tk := m.Submit(func(rec []byte) {
			mus[q].Lock()
			counts[q]++
			mus[q].Unlock()
		})
		go func() {
			defer wg.Done()
			if err := tk.Wait(ctx); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for q, c := range counts {
		if c != int64(len(photo)) {
			t.Errorf("query %d saw %d records, want %d", q, c, len(photo))
		}
	}
}

func TestQueryJoinsMidSweep(t *testing.T) {
	st, photo := buildStore(t, 3000, 3)
	fabric, err := cluster.New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, fabric)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	// A long-running background query keeps the sweep busy while a second
	// query joins mid-rotation; both must still see everything.
	bg := m.Submit(func(rec []byte) { time.Sleep(time.Microsecond) })
	time.Sleep(5 * time.Millisecond) // let the sweep advance

	var mu sync.Mutex
	seen := make(map[catalog.ObjID]bool)
	var obj catalog.PhotoObj
	tk := m.Submit(func(rec []byte) {
		mu.Lock()
		defer mu.Unlock()
		if err := obj.Decode(rec); err != nil {
			return
		}
		seen[obj.ObjID] = true
	})
	if err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := bg.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(photo) {
		t.Fatalf("mid-sweep query saw %d objects, want %d", len(seen), len(photo))
	}
}

func TestNodeFailureFailover(t *testing.T) {
	st, photo := buildStore(t, 3000, 4)
	fabric, err := cluster.New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, fabric)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	var mu sync.Mutex
	seen := make(map[catalog.ObjID]bool)
	var obj catalog.PhotoObj
	slowdown := make(chan struct{})
	tk := m.Submit(func(rec []byte) {
		select {
		case <-slowdown:
		default:
			time.Sleep(100 * time.Microsecond) // hold the query in flight
		}
		mu.Lock()
		defer mu.Unlock()
		if err := obj.Decode(rec); err != nil {
			return
		}
		seen[obj.ObjID] = true
	})
	time.Sleep(2 * time.Millisecond)
	m.FailNode(ctx, 0)
	close(slowdown)
	if err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// At-least-once across failover: every object must still be seen.
	if len(seen) != len(photo) {
		t.Fatalf("after failover query saw %d distinct objects, want %d", len(seen), len(photo))
	}
}

func TestThrottledAggregateRate(t *testing.T) {
	// With per-node throttling, N nodes must deliver ~N× the single-node
	// rate — the scaling argument of the paper's scan machine.
	st, _ := buildStore(t, 2000, 5)
	measure := func(nodes int) float64 {
		fabric, err := cluster.New(nodes, 50e6) // 50 MB/s per node
		if err != nil {
			t.Fatal(err)
		}
		m := New(st, fabric)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		m.Start(ctx)
		start := time.Now()
		tk := m.Submit(func(rec []byte) {})
		if err := tk.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return float64(st.Bytes()) / time.Since(start).Seconds()
	}
	// The threshold is deliberately loose: the test suite runs packages
	// concurrently, which compresses wall-clock scaling on small machines.
	// Experiment E6 measures the scaling shape precisely.
	r1 := measure(1)
	r4 := measure(4)
	if r4 < 1.4*r1 {
		t.Errorf("4-node rate %.0f not ≥ 1.4× 1-node rate %.0f", r4, r1)
	}
}

func TestEmptyMachine(t *testing.T) {
	st, err := store.Open(store.Options{RecordSize: 16, KeyOffset: 0})
	if err != nil {
		t.Fatal(err)
	}
	fabric, err := cluster.New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, fabric)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	tk := m.Submit(func(rec []byte) { t.Error("callback on empty store") })
	if err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestClusterFabric(t *testing.T) {
	if _, err := cluster.New(0, 0); err == nil {
		t.Error("zero-node fabric accepted")
	}
	f, err := cluster.New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := buildStore(t, 1000, 6)
	cs := st.Containers()
	f.Partition(cs, true)
	total := 0
	for i := 0; i < 3; i++ {
		total += len(f.Assigned(i))
	}
	if total != len(cs) {
		t.Fatalf("partition covers %d containers, want %d", total, len(cs))
	}
	for _, c := range cs {
		if f.Owner(c) < 0 {
			t.Fatalf("container %v unowned", c)
		}
	}
	lost := f.Fail(0)
	if len(lost) != 0 {
		t.Fatalf("replicated fabric lost %d containers on single failure", len(lost))
	}
	for _, c := range cs {
		o := f.Owner(c)
		if o < 0 || !f.Node(o).Alive() {
			t.Fatalf("container %v has dead or no owner after failover", c)
		}
	}
	if got := len(f.AliveNodes()); got != 2 {
		t.Fatalf("alive nodes = %d, want 2", got)
	}
}
