// Package scan implements the paper's scan machine: "a scan machine that
// continuously scans the dataset evaluating user-supplied predicates on
// each object [Acharya95]."
//
// Every node of the cluster sweeps its partition of the containers in an
// endless loop. Queries join the mix immediately on arrival, observe each
// container exactly once per node (one full rotation), and complete within
// the scan time. The crucial economy is that one I/O pass serves every
// concurrent query: a container is read once per sweep regardless of how
// many queries inspect it.
//
// On node failure, containers move to their replicas (cluster.Fabric) and
// affected in-flight queries re-observe the moved containers — delivery is
// at-least-once across failovers, exactly-once otherwise; clients that need
// set semantics dedup by ObjID.
package scan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdss/internal/cluster"
	"sdss/internal/htm"
	"sdss/internal/store"
)

// ContainerStore is the store surface the machine sweeps: any container-
// clustered source of records. Both store.Store and store.Sharded satisfy
// it, so a machine can sweep a single slice or a whole sharded archive.
type ContainerStore interface {
	Containers() []htm.ID
	Container(id htm.ID) *store.Container
	ForEachInContainer(id htm.ID, fn func(rec []byte) error) error
}

// Machine is the scan machine over one store and fabric.
type Machine struct {
	st     ContainerStore
	fabric *cluster.Fabric

	mu      sync.Mutex
	nextQID int
	active  map[int]*Ticket // live queries
	sweeps  atomic.Int64    // completed node-sweeps (diagnostics)
}

// Ticket tracks one submitted query.
type Ticket struct {
	ID int
	// fn is invoked for every record once per (container, owning node).
	fn func(rec []byte)

	mu sync.Mutex
	// remaining maps each node to the exact containers the query has yet
	// to observe there. Sets (rather than counts) keep completion honest
	// across failovers: a re-visit of an already-seen container never
	// counts as progress toward an unseen one.
	remaining map[int]map[htm.ID]struct{}
	done      chan struct{}
}

// Done returns a channel closed when the query has seen the whole dataset.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until completion or context cancellation.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// New builds a scan machine: the store's containers are partitioned across
// the fabric's nodes (with replication, so the machine survives single-node
// failures).
func New(st ContainerStore, fabric *cluster.Fabric) *Machine {
	fabric.Partition(st.Containers(), true)
	return &Machine{
		st:     st,
		fabric: fabric,
		active: make(map[int]*Ticket),
	}
}

// Start launches one sweeper goroutine per live node. It returns
// immediately; sweepers run until the context is cancelled.
func (m *Machine) Start(ctx context.Context) {
	for _, id := range m.fabric.AliveNodes() {
		go m.sweep(ctx, id)
	}
}

// Submit registers a query with the running machine. fn is called for
// every record of the dataset (filtering is the query's business — the
// machine is a pure data pump). The query completes after one full
// rotation on every node.
func (m *Machine) Submit(fn func(rec []byte)) *Ticket {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Ticket{
		ID:        m.nextQID,
		fn:        fn,
		remaining: make(map[int]map[htm.ID]struct{}),
		done:      make(chan struct{}),
	}
	m.nextQID++
	total := 0
	for _, node := range m.fabric.AliveNodes() {
		assigned := m.fabric.Assigned(node)
		if len(assigned) == 0 {
			continue
		}
		set := make(map[htm.ID]struct{}, len(assigned))
		for _, c := range assigned {
			set[c] = struct{}{}
		}
		t.remaining[node] = set
		total += len(assigned)
	}
	if total == 0 {
		close(t.done)
		return t
	}
	m.active[t.ID] = t
	return t
}

// FailNode kills a node. Containers with replicas move to their backup
// node; in-flight queries must re-observe the moved containers there (the
// at-least-once failover path). Containers without live replicas are lost
// and are deducted so queries still terminate.
func (m *Machine) FailNode(ctx context.Context, node int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	deadList := m.fabric.Assigned(node)
	lost := m.fabric.Fail(node)
	lostSet := make(map[htm.ID]struct{}, len(lost))
	for _, c := range lost {
		lostSet[c] = struct{}{}
	}
	for _, t := range m.active {
		t.mu.Lock()
		if pending, wasActive := t.remaining[node]; wasActive {
			delete(t.remaining, node)
			// Re-observe the dead node's whole partition on the replicas
			// (conservative: includes containers already seen there, so
			// delivery is at-least-once across the failover). Lost
			// containers are simply dropped so the query terminates.
			_ = pending
			for _, c := range deadList {
				if _, isLost := lostSet[c]; isLost {
					continue
				}
				target := m.fabric.Owner(c)
				if target < 0 {
					continue
				}
				set := t.remaining[target]
				if set == nil {
					set = make(map[htm.ID]struct{})
					t.remaining[target] = set
				}
				set[c] = struct{}{}
			}
		}
		finished := len(t.remaining) == 0
		t.mu.Unlock()
		if finished {
			m.finish(t)
		}
	}
	_ = ctx
}

// finish removes a completed ticket. Caller holds m.mu.
func (m *Machine) finish(t *Ticket) {
	select {
	case <-t.done:
	default:
		close(t.done)
	}
	delete(m.active, t.ID)
}

// sweep is one node's endless rotation over its containers.
func (m *Machine) sweep(ctx context.Context, node int) {
	nd := m.fabric.Node(node)
	for {
		if ctx.Err() != nil || !nd.Alive() {
			return
		}
		containers := m.fabric.Assigned(node)
		if len(containers) == 0 {
			// Idle node: wait for reassignment or shutdown.
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
			continue
		}
		for _, cid := range containers {
			if ctx.Err() != nil || !nd.Alive() {
				return
			}
			m.visit(node, nd, cid)
		}
		m.sweeps.Add(1)
	}
}

// visit reads one container once and shows it to every query active on this
// node.
func (m *Machine) visit(node int, nd *cluster.Node, cid htm.ID) {
	c := m.st.Container(cid)
	if c == nil {
		return
	}
	// One physical read serves all queries in the mix.
	nd.Read(c.Bytes())

	m.mu.Lock()
	queries := make([]*Ticket, 0, len(m.active))
	for _, t := range m.active {
		t.mu.Lock()
		if set, ok := t.remaining[node]; ok {
			if _, pending := set[cid]; pending {
				queries = append(queries, t)
			}
		}
		t.mu.Unlock()
	}
	m.mu.Unlock()
	if len(queries) > 0 {
		if err := m.st.ForEachInContainer(cid, func(rec []byte) error {
			for _, t := range queries {
				t.fn(rec)
			}
			return nil
		}); err != nil {
			// Store iteration cannot fail unless a callback does, and
			// scan callbacks do not return errors.
			panic(fmt.Sprintf("scan: container %v: %v", cid, err))
		}
	}

	// Progress accounting: this container is now seen on this node.
	m.mu.Lock()
	for _, t := range queries {
		t.mu.Lock()
		if set, ok := t.remaining[node]; ok {
			delete(set, cid)
			if len(set) == 0 {
				delete(t.remaining, node)
			}
		}
		finished := len(t.remaining) == 0
		t.mu.Unlock()
		if finished {
			m.finish(t)
		}
	}
	m.mu.Unlock()
}

// Sweeps returns the number of completed full node-sweeps (diagnostics).
func (m *Machine) Sweeps() int64 { return m.sweeps.Load() }

// ActiveQueries returns the number of queries currently in the mix.
func (m *Machine) ActiveQueries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
