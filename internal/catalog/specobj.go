package catalog

import (
	"encoding/binary"
	"fmt"
	"math"

	"sdss/internal/htm"
)

// NumLines is the number of identified spectral lines carried per spectrum.
const NumLines = 5

// SpectralLine is one identified emission or absorption line.
type SpectralLine struct {
	Wavelength float32 // observed wavelength, Å
	EquivWidth float32 // equivalent width, Å (negative = absorption)
	LineID     uint16  // rest-frame line identifier (e.g. 6563 for Hα)
}

// SpecObj is one row of the spectroscopic catalog: the redshift measurement
// and identified lines for a target selected from the photometric survey.
// Due to the expansion of the universe the redshift is a direct measure of
// distance; the spectroscopic survey's product is the 3-D galaxy map.
type SpecObj struct {
	ObjID ObjID  // the photometric object this spectrum belongs to
	HTMID htm.ID // spatial index key (same position as the PhotoObj)

	Redshift    float32
	RedshiftErr float32
	Class       Class   // spectroscopic classification
	FiberID     uint16  // optical fiber 1..640
	Plate       uint16  // spectroscopic plug plate ("tile")
	SN          float32 // median signal-to-noise per pixel

	Lines [NumLines]SpectralLine
}

// SpecObjSize is the encoded record length in bytes.
const SpecObjSize = 8 + 8 + 4 + 4 + 1 + 2 + 2 + 4 + NumLines*(4+4+2)

// AppendTo encodes the record onto buf and returns the extended slice.
func (s *SpecObj) AppendTo(buf []byte) []byte {
	var sc [8]byte
	le := binary.LittleEndian
	le.PutUint64(sc[:], uint64(s.ObjID))
	buf = append(buf, sc[:]...)
	le.PutUint64(sc[:], uint64(s.HTMID))
	buf = append(buf, sc[:]...)
	le.PutUint32(sc[:4], math.Float32bits(s.Redshift))
	buf = append(buf, sc[:4]...)
	le.PutUint32(sc[:4], math.Float32bits(s.RedshiftErr))
	buf = append(buf, sc[:4]...)
	buf = append(buf, byte(s.Class))
	le.PutUint16(sc[:2], s.FiberID)
	buf = append(buf, sc[:2]...)
	le.PutUint16(sc[:2], s.Plate)
	buf = append(buf, sc[:2]...)
	le.PutUint32(sc[:4], math.Float32bits(s.SN))
	buf = append(buf, sc[:4]...)
	for _, l := range s.Lines {
		le.PutUint32(sc[:4], math.Float32bits(l.Wavelength))
		buf = append(buf, sc[:4]...)
		le.PutUint32(sc[:4], math.Float32bits(l.EquivWidth))
		buf = append(buf, sc[:4]...)
		le.PutUint16(sc[:2], l.LineID)
		buf = append(buf, sc[:2]...)
	}
	return buf
}

// Decode fills the record from a buffer produced by AppendTo.
func (s *SpecObj) Decode(buf []byte) error {
	if len(buf) < SpecObjSize {
		return fmt.Errorf("catalog: SpecObj decode: got %d bytes, need %d", len(buf), SpecObjSize)
	}
	le := binary.LittleEndian
	off := 0
	s.ObjID = ObjID(le.Uint64(buf[off:]))
	off += 8
	s.HTMID = htm.ID(le.Uint64(buf[off:]))
	off += 8
	s.Redshift = math.Float32frombits(le.Uint32(buf[off:]))
	off += 4
	s.RedshiftErr = math.Float32frombits(le.Uint32(buf[off:]))
	off += 4
	s.Class = Class(buf[off])
	off++
	s.FiberID = le.Uint16(buf[off:])
	off += 2
	s.Plate = le.Uint16(buf[off:])
	off += 2
	s.SN = math.Float32frombits(le.Uint32(buf[off:]))
	off += 4
	for i := range s.Lines {
		s.Lines[i].Wavelength = math.Float32frombits(le.Uint32(buf[off:]))
		off += 4
		s.Lines[i].EquivWidth = math.Float32frombits(le.Uint32(buf[off:]))
		off += 4
		s.Lines[i].LineID = le.Uint16(buf[off:])
		off += 2
	}
	return nil
}
