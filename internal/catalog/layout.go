package catalog

import (
	"encoding/binary"
	"math"
)

// FieldKind is the wire encoding of one fixed-offset record field.
type FieldKind uint8

// The field encodings used by the catalog codecs.
const (
	KindU8 FieldKind = iota
	KindU16
	KindU64
	KindF32
	KindF64
)

// Size returns the encoded width of the kind in bytes.
func (k FieldKind) Size() int {
	switch k {
	case KindU8:
		return 1
	case KindU16:
		return 2
	case KindF32:
		return 4
	default:
		return 8
	}
}

// Field locates one scalar attribute inside an encoded record, so readers
// can fetch a single attribute without decoding the whole struct — the
// selective-decode path of the query engine and the zone-map builder.
// Names match the query language's canonical attribute names.
type Field struct {
	Name   string
	Offset int
	Kind   FieldKind
}

// Read decodes the field from an encoded record as a float64 — the engine's
// universal value type. Integral kinds convert exactly (all catalog integers
// fit in a float64 mantissa).
func (f Field) Read(rec []byte) float64 {
	le := binary.LittleEndian
	switch f.Kind {
	case KindU8:
		return float64(rec[f.Offset])
	case KindU16:
		return float64(le.Uint16(rec[f.Offset:]))
	case KindU64:
		return float64(le.Uint64(rec[f.Offset:]))
	case KindF32:
		return float64(math.Float32frombits(le.Uint32(rec[f.Offset:])))
	default:
		return math.Float64frombits(le.Uint64(rec[f.Offset:]))
	}
}

// RecordObjID reads the object identifier of an encoded record as the raw
// uint64 — not through Field.Read's float64, which would round identifiers
// above 2⁵³. Every table layout places objid first as a KindU64 field
// (catalog_test asserts it), making this the one sanctioned cross-table
// byte read; callers outside this package must use it instead of indexing
// record bytes directly.
func RecordObjID(rec []byte) ObjID {
	return ObjID(binary.LittleEndian.Uint64(rec))
}

// layoutBuilder accumulates fields at sequential offsets, mirroring the
// AppendTo encoders so offsets can never drift from the codecs silently
// (catalog_test cross-checks every field against a decoded struct).
type layoutBuilder struct {
	fields []Field
	off    int
}

func (b *layoutBuilder) add(name string, k FieldKind) {
	b.fields = append(b.fields, Field{Name: name, Offset: b.off, Kind: k})
	b.off += k.Size()
}

func (b *layoutBuilder) skip(n int) { b.off += n }

// PhotoLayout is the fixed byte layout of an encoded PhotoObj, in encoding
// order. The radial profiles (the bulk of the record) are not addressable
// attributes and appear only as trailing padding.
var PhotoLayout = buildPhotoLayout()

func buildPhotoLayout() []Field {
	var b layoutBuilder
	b.add("objid", KindU64)
	b.add("htmid", KindU64)
	b.add("run", KindU16)
	b.add("camcol", KindU8)
	b.add("field", KindU16)
	b.add("mjd", KindF64)
	b.add("ra", KindF64)
	b.add("dec", KindF64)
	b.add("cx", KindF64)
	b.add("cy", KindF64)
	b.add("cz", KindF64)
	for _, band := range [NumBands]string{"u", "g", "r", "i", "z"} {
		b.add(band, KindF32)
	}
	for _, band := range [NumBands]string{"u", "g", "r", "i", "z"} {
		b.add("err_"+band, KindF32)
	}
	for _, band := range [NumBands]string{"u", "g", "r", "i", "z"} {
		b.add("ext_"+band, KindF32)
	}
	b.add("petrorad", KindF32)
	b.add("petror50", KindF32)
	b.add("surfbright", KindF32)
	b.add("skybright", KindF32)
	b.add("airmass", KindF32)
	b.add("rowc", KindF32)
	b.add("colc", KindF32)
	b.add("psfwidth", KindF32)
	b.add("mura", KindF32)
	b.add("mudec", KindF32)
	b.add("class", KindU8)
	b.add("flags", KindU64)
	b.skip(4 * NumBands * NumProfileBins * 2) // Prof, ProfErr
	if b.off != PhotoObjSize {
		panic("catalog: PhotoLayout does not cover PhotoObjSize")
	}
	return b.fields
}

// TagLayout is the fixed byte layout of an encoded Tag. RA/Dec are not
// stored — they derive from the Cartesian triplet.
var TagLayout = buildTagLayout()

func buildTagLayout() []Field {
	var b layoutBuilder
	b.add("objid", KindU64)
	b.add("htmid", KindU64)
	b.add("cx", KindF64)
	b.add("cy", KindF64)
	b.add("cz", KindF64)
	for _, band := range [NumBands]string{"u", "g", "r", "i", "z"} {
		b.add(band, KindF32)
	}
	b.add("size", KindF32)
	b.add("class", KindU8)
	if b.off != TagSize {
		panic("catalog: TagLayout does not cover TagSize")
	}
	return b.fields
}

// SpecLayout is the fixed byte layout of an encoded SpecObj. The position
// triplet is not stored — it derives from the trixel center. The spectral
// lines are not addressable attributes.
var SpecLayout = buildSpecLayout()

func buildSpecLayout() []Field {
	var b layoutBuilder
	b.add("objid", KindU64)
	b.add("htmid", KindU64)
	b.add("redshift", KindF32)
	b.add("zerr", KindF32)
	b.add("class", KindU8)
	b.add("fiberid", KindU16)
	b.add("plate", KindU16)
	b.add("sn", KindF32)
	b.skip(NumLines * (4 + 4 + 2)) // Lines
	if b.off != SpecObjSize {
		panic("catalog: SpecLayout does not cover SpecObjSize")
	}
	return b.fields
}
