// Package catalog defines the SDSS object schemas — the photometric object,
// the small "tag" object carrying the ten most popular attributes, and the
// spectroscopic object — together with fixed-size binary codecs used by the
// container store, the FITS interchange layer, and the network data pump.
//
// The paper's photometric catalog has ~500 attributes per object; this
// implementation carries a representative subset including the bulky parts
// that dominate the record size (five-band radial profiles with errors), so
// that the tag-versus-full storage ratio — the basis of the paper's claim
// that tag searches run more than 10× faster — is preserved.
package catalog

import (
	"encoding/binary"
	"fmt"
	"math"

	"sdss/internal/htm"
	"sdss/internal/sphere"
)

// ObjID is the unique identifier of a catalog object.
type ObjID uint64

// Class is the photometric classification of an object.
type Class uint8

const (
	// ClassUnknown marks objects the pipeline could not classify.
	ClassUnknown Class = iota
	// ClassStar is a point source on the stellar locus.
	ClassStar
	// ClassGalaxy is an extended source.
	ClassGalaxy
	// ClassQuasar is a point source with non-stellar (UV-excess) colors.
	ClassQuasar
)

// String names the class as in catalog listings.
func (c Class) String() string {
	switch c {
	case ClassStar:
		return "STAR"
	case ClassGalaxy:
		return "GALAXY"
	case ClassQuasar:
		return "QSO"
	default:
		return "UNKNOWN"
	}
}

// Photometric pipeline status flags (a small subset of the SDSS flag set).
const (
	FlagSaturated uint64 = 1 << iota // at least one saturated pixel
	FlagBlended                      // object was deblended from a parent
	FlagEdge                         // too close to a frame edge
	FlagChild                        // product of deblending
	FlagVariable                     // flux varied between repeat scans
	FlagMoved                        // measurable proper motion
	FlagInterp                       // interpolated pixels in aperture
	FlagCosmicRay                    // cosmic ray hit in aperture
)

// Band indexes the five SDSS filters.
type Band int

// The five SDSS broad-band filters, ultraviolet to infrared.
const (
	U Band = iota
	G
	R
	I
	Z
	NumBands = 5
)

// String names the filter.
func (b Band) String() string { return [...]string{"u", "g", "r", "i", "z"}[b] }

// NumProfileBins is the number of radial profile annuli per band, matching
// the SDSS photometric pipeline's 15 logarithmically spaced apertures.
const NumProfileBins = 15

// PhotoObj is one row of the photometric catalog. Positions are stored in
// Cartesian form (the unit vector X, Y, Z) as the paper prescribes; RA/Dec
// are carried alongside for human consumption and interchange.
type PhotoObj struct {
	ObjID ObjID
	HTMID htm.ID // trixel at IndexDepth containing the object

	// Observation provenance.
	Run    uint16  // drift-scan run number
	Camcol uint8   // camera column 1..6
	Field  uint16  // field number within the run
	MJD    float64 // modified Julian date of the observation

	// Position.
	RA, Dec float64 // degrees, J2000
	X, Y, Z float64 // unit vector of (RA, Dec)

	// Five-band photometry.
	Mag        [NumBands]float32 // model magnitudes u,g,r,i,z
	MagErr     [NumBands]float32
	Extinction [NumBands]float32 // galactic extinction corrections

	// Shape and image statistics.
	PetroRad   float32 // Petrosian radius, arcsec
	PetroR50   float32 // radius containing 50% of Petrosian flux
	SurfBright float32 // mean surface brightness within PetroR50
	SkyBright  float32 // local sky level
	Airmass    float32
	RowC, ColC float32 // CCD pixel coordinates
	PSFWidth   float32 // seeing at the object position, arcsec

	// Proper motion (repeat southern scans), mas/yr.
	MuRA, MuDec float32

	Class Class
	Flags uint64

	// Radial profiles: mean flux and error in 15 annuli per band. These
	// are the bulk of the record, as in the real photometric catalog.
	Prof    [NumBands][NumProfileBins]float32
	ProfErr [NumBands][NumProfileBins]float32
}

// IndexDepth is the HTM depth at which objects are indexed. Depth 20
// trixels are ~0.3 arcsec across, comfortably below the survey's resolution,
// so an object's trixel ID is effectively a spatial hash of its position.
const IndexDepth = 20

// PhotoObjSize is the encoded record length in bytes.
const PhotoObjSize = 8 + 8 + // ObjID, HTMID
	2 + 1 + 2 + 8 + // Run, Camcol, Field, MJD
	8 + 8 + 8 + 8 + 8 + // RA, Dec, X, Y, Z
	4*NumBands*3 + // Mag, MagErr, Extinction
	4*10 + // PetroRad..MuDec (10 float32)
	1 + 8 + // Class, Flags
	4*NumBands*NumProfileBins*2 // Prof, ProfErr

// Pos returns the object's position as a unit vector.
func (p *PhotoObj) Pos() sphere.Vec3 { return sphere.Vec3{X: p.X, Y: p.Y, Z: p.Z} }

// SetPos sets RA/Dec (degrees) and the derived Cartesian triplet and HTM ID.
func (p *PhotoObj) SetPos(raDeg, decDeg float64) error {
	p.RA, p.Dec = sphere.NormalizeRA(raDeg), sphere.ClampDec(decDeg)
	v := sphere.FromRADec(p.RA, p.Dec)
	p.X, p.Y, p.Z = v.X, v.Y, v.Z
	id, err := htm.Lookup(v, IndexDepth)
	if err != nil {
		return fmt.Errorf("catalog: indexing position (%v, %v): %w", raDeg, decDeg, err)
	}
	p.HTMID = id
	return nil
}

// Color returns the color index between two bands, e.g. Color(U, G) = u−g.
func (p *PhotoObj) Color(b1, b2 Band) float64 {
	return float64(p.Mag[b1] - p.Mag[b2])
}

// AppendTo encodes the record onto buf in the fixed binary layout and
// returns the extended slice.
func (p *PhotoObj) AppendTo(buf []byte) []byte {
	var scratch [8]byte
	le := binary.LittleEndian
	put64 := func(v uint64) {
		le.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:8]...)
	}
	putF64 := func(v float64) { put64(math.Float64bits(v)) }
	putF32 := func(v float32) {
		le.PutUint32(scratch[:4], math.Float32bits(v))
		buf = append(buf, scratch[:4]...)
	}
	put16 := func(v uint16) {
		le.PutUint16(scratch[:2], v)
		buf = append(buf, scratch[:2]...)
	}

	put64(uint64(p.ObjID))
	put64(uint64(p.HTMID))
	put16(p.Run)
	buf = append(buf, p.Camcol)
	put16(p.Field)
	putF64(p.MJD)
	putF64(p.RA)
	putF64(p.Dec)
	putF64(p.X)
	putF64(p.Y)
	putF64(p.Z)
	for _, a := range [][NumBands]float32{p.Mag, p.MagErr, p.Extinction} {
		for _, v := range a {
			putF32(v)
		}
	}
	for _, v := range [10]float32{p.PetroRad, p.PetroR50, p.SurfBright, p.SkyBright,
		p.Airmass, p.RowC, p.ColC, p.PSFWidth, p.MuRA, p.MuDec} {
		putF32(v)
	}
	buf = append(buf, byte(p.Class))
	put64(p.Flags)
	for b := 0; b < NumBands; b++ {
		for i := 0; i < NumProfileBins; i++ {
			putF32(p.Prof[b][i])
		}
	}
	for b := 0; b < NumBands; b++ {
		for i := 0; i < NumProfileBins; i++ {
			putF32(p.ProfErr[b][i])
		}
	}
	return buf
}

// Decode fills the record from a buffer produced by AppendTo. The buffer
// must hold at least PhotoObjSize bytes.
func (p *PhotoObj) Decode(buf []byte) error {
	if len(buf) < PhotoObjSize {
		return fmt.Errorf("catalog: PhotoObj decode: got %d bytes, need %d", len(buf), PhotoObjSize)
	}
	le := binary.LittleEndian
	off := 0
	u64 := func() uint64 { v := le.Uint64(buf[off:]); off += 8; return v }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	f32 := func() float32 { v := math.Float32frombits(le.Uint32(buf[off:])); off += 4; return v }
	u16 := func() uint16 { v := le.Uint16(buf[off:]); off += 2; return v }

	p.ObjID = ObjID(u64())
	p.HTMID = htm.ID(u64())
	p.Run = u16()
	p.Camcol = buf[off]
	off++
	p.Field = u16()
	p.MJD = f64()
	p.RA = f64()
	p.Dec = f64()
	p.X = f64()
	p.Y = f64()
	p.Z = f64()
	for _, a := range [3]*[NumBands]float32{&p.Mag, &p.MagErr, &p.Extinction} {
		for i := range a {
			a[i] = f32()
		}
	}
	p.PetroRad = f32()
	p.PetroR50 = f32()
	p.SurfBright = f32()
	p.SkyBright = f32()
	p.Airmass = f32()
	p.RowC = f32()
	p.ColC = f32()
	p.PSFWidth = f32()
	p.MuRA = f32()
	p.MuDec = f32()
	p.Class = Class(buf[off])
	off++
	p.Flags = u64()
	for b := 0; b < NumBands; b++ {
		for i := 0; i < NumProfileBins; i++ {
			p.Prof[b][i] = f32()
		}
	}
	for b := 0; b < NumBands; b++ {
		for i := 0; i < NumProfileBins; i++ {
			p.ProfErr[b][i] = f32()
		}
	}
	return nil
}
