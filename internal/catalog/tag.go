package catalog

import (
	"encoding/binary"
	"fmt"
	"math"

	"sdss/internal/htm"
	"sdss/internal/sphere"
)

// Tag is the small object the paper proposes for desktop analysis and fast
// scans: "the 10 most popular attributes (3 Cartesian positions on the sky,
// 5 colors, 1 size, 1 classification parameter) into small 'tag' objects,
// which point to the rest of the attributes."
//
// The ObjID is the pointer back to the full PhotoObj; the HTMID doubles as
// the spatial index key. A Tag record is ~12× smaller than a PhotoObj
// record, which is what makes tag-only queries an order of magnitude faster.
type Tag struct {
	ObjID ObjID
	HTMID htm.ID

	X, Y, Z float64           // the 3 Cartesian positions
	Mag     [NumBands]float32 // the 5 colors (band magnitudes)
	Size    float32           // Petrosian radius, arcsec
	Class   Class             // the classification parameter
}

// TagSize is the encoded record length in bytes.
const TagSize = 8 + 8 + 8*3 + 4*NumBands + 4 + 1

// MakeTag projects a PhotoObj onto its tag object.
func MakeTag(p *PhotoObj) Tag {
	return Tag{
		ObjID: p.ObjID,
		HTMID: p.HTMID,
		X:     p.X, Y: p.Y, Z: p.Z,
		Mag:   p.Mag,
		Size:  p.PetroRad,
		Class: p.Class,
	}
}

// Pos returns the tag's position as a unit vector.
func (t *Tag) Pos() sphere.Vec3 { return sphere.Vec3{X: t.X, Y: t.Y, Z: t.Z} }

// Color returns the color index between two bands.
func (t *Tag) Color(b1, b2 Band) float64 { return float64(t.Mag[b1] - t.Mag[b2]) }

// AppendTo encodes the tag onto buf and returns the extended slice.
func (t *Tag) AppendTo(buf []byte) []byte {
	var s [8]byte
	le := binary.LittleEndian
	le.PutUint64(s[:], uint64(t.ObjID))
	buf = append(buf, s[:]...)
	le.PutUint64(s[:], uint64(t.HTMID))
	buf = append(buf, s[:]...)
	for _, f := range [3]float64{t.X, t.Y, t.Z} {
		le.PutUint64(s[:], math.Float64bits(f))
		buf = append(buf, s[:]...)
	}
	for _, m := range t.Mag {
		le.PutUint32(s[:4], math.Float32bits(m))
		buf = append(buf, s[:4]...)
	}
	le.PutUint32(s[:4], math.Float32bits(t.Size))
	buf = append(buf, s[:4]...)
	buf = append(buf, byte(t.Class))
	return buf
}

// Decode fills the tag from a buffer produced by AppendTo.
func (t *Tag) Decode(buf []byte) error {
	if len(buf) < TagSize {
		return fmt.Errorf("catalog: Tag decode: got %d bytes, need %d", len(buf), TagSize)
	}
	le := binary.LittleEndian
	off := 0
	u64 := func() uint64 { v := le.Uint64(buf[off:]); off += 8; return v }
	t.ObjID = ObjID(u64())
	t.HTMID = htm.ID(u64())
	t.X = math.Float64frombits(u64())
	t.Y = math.Float64frombits(u64())
	t.Z = math.Float64frombits(u64())
	for i := range t.Mag {
		t.Mag[i] = math.Float32frombits(le.Uint32(buf[off:]))
		off += 4
	}
	t.Size = math.Float32frombits(le.Uint32(buf[off:]))
	off += 4
	t.Class = Class(buf[off])
	return nil
}
