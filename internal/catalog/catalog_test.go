package catalog

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randomPhotoObj(rng *rand.Rand) PhotoObj {
	var p PhotoObj
	p.ObjID = ObjID(rng.Uint64())
	p.Run = uint16(rng.Intn(9999))
	p.Camcol = uint8(1 + rng.Intn(6))
	p.Field = uint16(rng.Intn(1000))
	p.MJD = 51000 + rng.Float64()*2000
	if err := p.SetPos(rng.Float64()*360, rng.Float64()*180-90); err != nil {
		panic(err)
	}
	for b := 0; b < NumBands; b++ {
		p.Mag[b] = float32(14 + rng.Float64()*9)
		p.MagErr[b] = float32(rng.Float64() * 0.3)
		p.Extinction[b] = float32(rng.Float64() * 0.2)
		for i := 0; i < NumProfileBins; i++ {
			p.Prof[b][i] = float32(rng.NormFloat64())
			p.ProfErr[b][i] = float32(rng.Float64())
		}
	}
	p.PetroRad = float32(rng.Float64() * 10)
	p.PetroR50 = p.PetroRad / 2
	p.SurfBright = float32(18 + rng.Float64()*6)
	p.SkyBright = float32(rng.Float64())
	p.Airmass = float32(1 + rng.Float64()*0.5)
	p.RowC = float32(rng.Float64() * 2048)
	p.ColC = float32(rng.Float64() * 2048)
	p.PSFWidth = float32(1 + rng.Float64())
	p.MuRA = float32(rng.NormFloat64() * 5)
	p.MuDec = float32(rng.NormFloat64() * 5)
	p.Class = Class(rng.Intn(4))
	p.Flags = rng.Uint64()
	return p
}

func TestPhotoObjCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := randomPhotoObj(rng)
		buf := p.AppendTo(nil)
		if len(buf) != PhotoObjSize {
			t.Fatalf("encoded size = %d, want %d", len(buf), PhotoObjSize)
		}
		var q PhotoObj
		if err := q.Decode(buf); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", p, q)
		}
	}
}

func TestPhotoObjDecodeShortBuffer(t *testing.T) {
	var p PhotoObj
	if err := p.Decode(make([]byte, PhotoObjSize-1)); err == nil {
		t.Error("short buffer decode succeeded")
	}
}

func TestSetPosDerivedFields(t *testing.T) {
	var p PhotoObj
	if err := p.SetPos(370, 45); err != nil { // RA wraps to 10
		t.Fatal(err)
	}
	if p.RA != 10 || p.Dec != 45 {
		t.Errorf("SetPos normalized to (%v, %v)", p.RA, p.Dec)
	}
	v := p.Pos()
	if !v.IsUnit(1e-12) {
		t.Error("Pos not a unit vector")
	}
	if p.HTMID.Depth() != IndexDepth {
		t.Errorf("HTMID depth = %d, want %d", p.HTMID.Depth(), IndexDepth)
	}
}

func TestColor(t *testing.T) {
	var p PhotoObj
	p.Mag = [NumBands]float32{19.5, 18.2, 17.6, 17.3, 17.1}
	if got := p.Color(U, G); math.Abs(got-1.3) > 1e-6 {
		t.Errorf("u-g = %v, want 1.3", got)
	}
	tag := MakeTag(&p)
	if got := tag.Color(G, R); math.Abs(got-0.6) > 1e-6 {
		t.Errorf("tag g-r = %v, want 0.6", got)
	}
}

func TestTagCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := randomPhotoObj(rng)
		tag := MakeTag(&p)
		buf := tag.AppendTo(nil)
		if len(buf) != TagSize {
			t.Fatalf("encoded size = %d, want %d", len(buf), TagSize)
		}
		var q Tag
		if err := q.Decode(buf); err != nil {
			t.Fatal(err)
		}
		if q != tag {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", tag, q)
		}
	}
	var q Tag
	if err := q.Decode(make([]byte, TagSize-1)); err == nil {
		t.Error("short buffer decode succeeded")
	}
}

func TestTagProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPhotoObj(rng)
	tag := MakeTag(&p)
	if tag.ObjID != p.ObjID || tag.HTMID != p.HTMID {
		t.Error("tag identity fields differ")
	}
	if tag.Pos() != p.Pos() {
		t.Error("tag position differs")
	}
	if tag.Mag != p.Mag || tag.Size != p.PetroRad || tag.Class != p.Class {
		t.Error("tag attributes differ")
	}
}

func TestTagCompressionRatio(t *testing.T) {
	// The design ratio behind the ">10× faster" claim: the tag record
	// must be at least 10× smaller than the full record.
	ratio := float64(PhotoObjSize) / float64(TagSize)
	if ratio < 10 {
		t.Errorf("PhotoObj/Tag size ratio = %.1f, want ≥ 10", ratio)
	}
}

func TestSpecObjCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		s := SpecObj{
			ObjID:       ObjID(rng.Uint64()),
			Redshift:    float32(rng.Float64() * 5),
			RedshiftErr: float32(rng.Float64() * 0.01),
			Class:       Class(rng.Intn(4)),
			FiberID:     uint16(1 + rng.Intn(640)),
			Plate:       uint16(rng.Intn(3000)),
			SN:          float32(rng.Float64() * 30),
		}
		for j := range s.Lines {
			s.Lines[j] = SpectralLine{
				Wavelength: float32(3900 + rng.Float64()*5300),
				EquivWidth: float32(rng.NormFloat64() * 10),
				LineID:     uint16(rng.Intn(10000)),
			}
		}
		buf := s.AppendTo(nil)
		if len(buf) != SpecObjSize {
			t.Fatalf("encoded size = %d, want %d", len(buf), SpecObjSize)
		}
		var q SpecObj
		if err := q.Decode(buf); err != nil {
			t.Fatal(err)
		}
		if q != s {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", s, q)
		}
	}
	var q SpecObj
	if err := q.Decode(make([]byte, SpecObjSize-1)); err == nil {
		t.Error("short buffer decode succeeded")
	}
}

func TestQuickCodecIdempotence(t *testing.T) {
	// Property: decode(encode(x)) == x and encode is length-stable, for
	// arbitrary seeds.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPhotoObj(rng)
		buf := p.AppendTo(nil)
		var q PhotoObj
		if err := q.Decode(buf); err != nil {
			return false
		}
		buf2 := q.AppendTo(nil)
		return len(buf) == len(buf2) && string(buf) == string(buf2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClassAndBandStrings(t *testing.T) {
	if ClassGalaxy.String() != "GALAXY" || ClassQuasar.String() != "QSO" ||
		ClassStar.String() != "STAR" || ClassUnknown.String() != "UNKNOWN" {
		t.Error("class names wrong")
	}
	if U.String() != "u" || Z.String() != "z" {
		t.Error("band names wrong")
	}
}

func BenchmarkPhotoObjEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomPhotoObj(rng)
	buf := make([]byte, 0, PhotoObjSize)
	b.SetBytes(PhotoObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendTo(buf[:0])
	}
}

func BenchmarkPhotoObjDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomPhotoObj(rng)
	buf := p.AppendTo(nil)
	var q PhotoObj
	b.SetBytes(PhotoObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
