package catalog

import (
	"math"
	"math/rand"
	"testing"
)

// fieldValue reads the struct field the layout entry names, via the decoded
// struct, so layouts are cross-checked against the codecs themselves.
func photoFieldValue(p *PhotoObj, name string) float64 {
	bands := map[string]Band{"u": U, "g": G, "r": R, "i": I, "z": Z}
	if b, ok := bands[name]; ok {
		return float64(p.Mag[b])
	}
	switch name {
	case "objid":
		return float64(p.ObjID)
	case "htmid":
		return float64(p.HTMID)
	case "run":
		return float64(p.Run)
	case "camcol":
		return float64(p.Camcol)
	case "field":
		return float64(p.Field)
	case "mjd":
		return p.MJD
	case "ra":
		return p.RA
	case "dec":
		return p.Dec
	case "cx":
		return p.X
	case "cy":
		return p.Y
	case "cz":
		return p.Z
	case "err_u", "err_g", "err_r", "err_i", "err_z":
		return float64(p.MagErr[bands[name[4:]]])
	case "ext_u", "ext_g", "ext_r", "ext_i", "ext_z":
		return float64(p.Extinction[bands[name[4:]]])
	case "petrorad":
		return float64(p.PetroRad)
	case "petror50":
		return float64(p.PetroR50)
	case "surfbright":
		return float64(p.SurfBright)
	case "skybright":
		return float64(p.SkyBright)
	case "airmass":
		return float64(p.Airmass)
	case "rowc":
		return float64(p.RowC)
	case "colc":
		return float64(p.ColC)
	case "psfwidth":
		return float64(p.PSFWidth)
	case "mura":
		return float64(p.MuRA)
	case "mudec":
		return float64(p.MuDec)
	case "class":
		return float64(p.Class)
	case "flags":
		return float64(p.Flags)
	}
	panic("unknown photo field " + name)
}

func TestPhotoLayoutMatchesCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		p := randomPhotoObj(rng)
		rec := p.AppendTo(nil)
		for _, f := range PhotoLayout {
			got := f.Read(rec)
			want := photoFieldValue(&p, f.Name)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("PhotoLayout %s at offset %d read %v, struct has %v",
					f.Name, f.Offset, got, want)
			}
		}
	}
}

func TestTagLayoutMatchesCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bands := map[string]Band{"u": U, "g": G, "r": R, "i": I, "z": Z}
	for i := 0; i < 50; i++ {
		p := randomPhotoObj(rng)
		tag := MakeTag(&p)
		rec := tag.AppendTo(nil)
		for _, f := range TagLayout {
			got := f.Read(rec)
			var want float64
			if b, ok := bands[f.Name]; ok {
				want = float64(tag.Mag[b])
			} else {
				switch f.Name {
				case "objid":
					want = float64(tag.ObjID)
				case "htmid":
					want = float64(tag.HTMID)
				case "cx":
					want = tag.X
				case "cy":
					want = tag.Y
				case "cz":
					want = tag.Z
				case "size":
					want = float64(tag.Size)
				case "class":
					want = float64(tag.Class)
				default:
					t.Fatalf("unknown tag field %s", f.Name)
				}
			}
			if got != want {
				t.Fatalf("TagLayout %s at offset %d read %v, struct has %v",
					f.Name, f.Offset, got, want)
			}
		}
	}
}

func TestSpecLayoutMatchesCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		s := SpecObj{
			ObjID:       ObjID(rng.Uint64()),
			HTMID:       1 << 40,
			Redshift:    float32(rng.Float64() * 5),
			RedshiftErr: float32(rng.Float64() * 0.01),
			Class:       Class(rng.Intn(4)),
			FiberID:     uint16(1 + rng.Intn(640)),
			Plate:       uint16(rng.Intn(3000)),
			SN:          float32(rng.Float64() * 30),
		}
		rec := s.AppendTo(nil)
		for _, f := range SpecLayout {
			got := f.Read(rec)
			var want float64
			switch f.Name {
			case "objid":
				want = float64(s.ObjID)
			case "htmid":
				want = float64(s.HTMID)
			case "redshift":
				want = float64(s.Redshift)
			case "zerr":
				want = float64(s.RedshiftErr)
			case "class":
				want = float64(s.Class)
			case "fiberid":
				want = float64(s.FiberID)
			case "plate":
				want = float64(s.Plate)
			case "sn":
				want = float64(s.SN)
			default:
				t.Fatalf("unknown spec field %s", f.Name)
			}
			if got != want {
				t.Fatalf("SpecLayout %s at offset %d read %v, struct has %v",
					f.Name, f.Offset, got, want)
			}
		}
	}
}
