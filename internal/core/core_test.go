package core

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/query"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
	"sdss/internal/tiling"
)

func testArchive(t testing.TB, n int, seed int64) (*Archive, *skygen.Chunk) {
	t.Helper()
	a, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := skygen.GenerateChunk(skygen.Default(seed, n), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadChunk(ch); err != nil {
		t.Fatal(err)
	}
	return a, ch
}

func TestCreateLoadQuery(t *testing.T) {
	a, ch := testArchive(t, 3000, 1)
	st := a.Stats()
	if st.PhotoObjects != int64(len(ch.Photo)) || st.TagObjects != st.PhotoObjects {
		t.Fatalf("stats %+v do not match chunk of %d", st, len(ch.Photo))
	}
	rows, err := a.Query(context.Background(), "SELECT COUNT(*) FROM photoobj")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Values[0] != float64(len(ch.Photo)) {
		t.Errorf("COUNT(*) = %v, want %d", res[0].Values[0], len(ch.Photo))
	}
}

func TestPersistentArchive(t *testing.T) {
	dir := t.TempDir()
	a, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := skygen.GenerateChunk(skygen.Default(2, 1000), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadChunk(ch); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats().PhotoObjects != int64(len(ch.Photo)) {
		t.Fatalf("reopened archive holds %d objects, want %d", b.Stats().PhotoObjects, len(ch.Photo))
	}
}

func TestConeSearch(t *testing.T) {
	a, ch := testArchive(t, 4000, 3)
	c := &ch.Photo[0]
	got, err := a.ConeSearch(context.Background(), c.RA, c.Dec, 30)
	if err != nil {
		t.Fatal(err)
	}
	center := c.Pos()
	want := 0
	for i := range ch.Photo {
		if sphere.Dist(center, ch.Photo[i].Pos()) <= 30*sphere.Arcmin {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("cone found %d, want %d", len(got), want)
	}
	for i := range got {
		if d := sphere.Dist(center, got[i].Pos()); d > 30*sphere.Arcmin+1e-12 {
			t.Fatalf("object outside cone at %v", d)
		}
	}
}

func TestLensAndGroupsAndCrossMatch(t *testing.T) {
	a, ch := testArchive(t, 4000, 4)
	// Lens candidates run end to end (count depends on the sky draw).
	if _, err := a.LensCandidates(10, 0.05); err != nil {
		t.Fatal(err)
	}
	groups, err := a.Groups(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic sky has rich clusters; FoF at 30 arcsec must find some.
	if len(groups) == 0 {
		t.Error("no groups found in clustered sky")
	}
	radio := skygen.RadioCatalog(9, ch.Photo, 0.8, 1.0, 0.2)
	matches, err := a.CrossMatch(radio, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Error("no cross-matches")
	}
}

func TestSampleArchive(t *testing.T) {
	a, _ := testArchive(t, 20000, 5)
	s, err := a.Sample(0.1)
	if err != nil {
		t.Fatal(err)
	}
	full := a.Stats()
	samp := s.Stats()
	frac := float64(samp.PhotoObjects) / float64(full.PhotoObjects)
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("sample fraction %.3f, want ~0.1", frac)
	}
	if samp.PhotoObjects != samp.TagObjects {
		t.Error("sample tables inconsistent")
	}
	// Sampled archive answers queries.
	rows, err := s.Query(context.Background(), "SELECT COUNT(*) FROM tag WHERE r < 21")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Sample(0); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestScanMachineIntegration(t *testing.T) {
	a, ch := testArchive(t, 2000, 6)
	m, fabric, err := a.ScanMachine(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	// Node sweepers call the query concurrently; guard shared state.
	var mu sync.Mutex
	count := 0
	tk := m.Submit(func(rec []byte) {
		var obj catalog.PhotoObj
		if err := obj.Decode(rec); err == nil {
			mu.Lock()
			count++
			mu.Unlock()
		}
	})
	if err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != len(ch.Photo) {
		t.Fatalf("scan machine delivered %d records, want %d", count, len(ch.Photo))
	}
	if fabric.TotalBytesRead() == 0 {
		t.Error("fabric accounted no bytes")
	}
}

func TestWWWIntegration(t *testing.T) {
	a, _ := testArchive(t, 1000, 7)
	srv := httptest.NewServer(a.WWW())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status endpoint returned %d", resp.StatusCode)
	}
}

func TestPlanTiles(t *testing.T) {
	a, ch := testArchive(t, 20000, 9)
	if len(ch.Spec) == 0 {
		t.Skip("no spectra at this scale")
	}
	res, err := a.PlanTiles(tiling.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != len(ch.Spec) {
		t.Errorf("tiling saw %d targets, want %d", res.Total, len(ch.Spec))
	}
	if res.Coverage() < 0.9 {
		t.Errorf("tiling covered %.2f of spectro targets", res.Coverage())
	}
	for _, tile := range res.Tiles {
		if len(tile.Assigned) > tiling.FibersPerTile {
			t.Fatal("tile over fiber budget")
		}
	}
}

func TestPrepareExecute(t *testing.T) {
	a, _ := testArchive(t, 1500, 8)
	prep, err := a.Prepare("SELECT COUNT(*) FROM tag WHERE class = 'GALAXY'")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rows, err := a.Execute(context.Background(), prep)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rows.Collect(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryRowsTypedSurface(t *testing.T) {
	a, _ := testArchive(t, 2000, 12)
	rows, err := a.QueryRows(context.Background(), "SELECT objid, ra, dec, r FROM tag ORDER BY r", QueryOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	cols := rows.Columns()
	if len(cols) != 4 || cols[0].Name != "objid" || cols[3].Name != "r" {
		t.Fatalf("columns = %+v", cols)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("limit delivered %d rows, want 5", len(res))
	}
	if !rows.Truncated() {
		t.Error("capped stream not marked truncated")
	}

	// Offset pages line up with the unpaged result.
	paged, err := a.QueryRows(context.Background(), "SELECT objid, ra, dec, r FROM tag ORDER BY r", QueryOptions{Limit: 2, Offset: 3})
	if err != nil {
		t.Fatal(err)
	}
	page, err := paged.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 2 || page[0].ObjID != res[3].ObjID {
		t.Fatalf("page = %+v, want rows 3..4 of %+v", page, res[3:])
	}
}

func TestExplainPlan(t *testing.T) {
	a, _ := testArchive(t, 100, 13)
	plan, err := a.Explain("SELECT objid FROM tag WHERE CIRCLE(10, 10, 5)")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "scan" || !plan.Indexed {
		t.Fatalf("plan = %+v", plan)
	}
	if _, err := a.Explain("garbage"); err == nil {
		t.Error("Explain accepted garbage")
	}
}

func TestConeSearchFieldFidelity(t *testing.T) {
	// The projected-value rebuild must reproduce the stored tags exactly.
	a, ch := testArchive(t, 3000, 14)
	c := &ch.Photo[0]
	got, err := a.ConeSearch(context.Background(), c.RA, c.Dec, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty cone around a real object")
	}
	want := make(map[catalog.ObjID]catalog.Tag)
	for i := range ch.Photo {
		tag := catalog.MakeTag(&ch.Photo[i])
		want[tag.ObjID] = tag
	}
	for _, g := range got {
		w, ok := want[g.ObjID]
		if !ok {
			t.Fatalf("cone returned unknown object %d", g.ObjID)
		}
		if g.HTMID != w.HTMID || g.Mag != w.Mag || g.Size != w.Size || g.Class != w.Class {
			t.Fatalf("rebuilt tag %+v != stored %+v", g, w)
		}
		if sphere.Dist(g.Pos(), w.Pos()) > 1e-12 {
			t.Fatalf("position drifted for %d", g.ObjID)
		}
	}
}

func TestCone(t *testing.T) {
	a, ch := testArchive(t, 2000, 15)
	c := &ch.Photo[0]
	rows, err := a.Cone(context.Background(), query.TableTag, c.RA, c.Dec, 30, "objid, r", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cols := rows.Columns()
	if len(cols) != 2 || cols[1].Name != "r" {
		t.Fatalf("cone columns = %+v", cols)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("cone returned nothing")
	}
}
