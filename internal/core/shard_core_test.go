package core

import (
	"context"
	"testing"

	"sdss/internal/skygen"
)

// TestShardedArchivePersistence creates a 4-shard on-disk archive, flushes
// it, and reopens it with Shards 0 — the recorded slice count must be
// adopted and queries must see every record.
func TestShardedArchivePersistence(t *testing.T) {
	dir := t.TempDir()
	a, err := Create(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	photo, spec, err := skygen.GenerateAll(skygen.Default(5, 4000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadObjects(photo, spec); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	count := func(a *Archive) float64 {
		rows, err := a.Query(context.Background(), "SELECT COUNT(*) FROM tag")
		if err != nil {
			t.Fatal(err)
		}
		res, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Values[0]
	}
	want := count(a)
	if int(want) != len(photo) {
		t.Fatalf("count = %v, want %d", want, len(photo))
	}

	again, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := again.NumShards(); got != 4 {
		t.Fatalf("reopened NumShards = %d, want 4", got)
	}
	if got := count(again); got != want {
		t.Fatalf("reopened count = %v, want %v", got, want)
	}
	if st := again.Stats(); st.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", st.Shards)
	}

	// A mismatched shard request must refuse the directory.
	if _, err := Create(dir, Options{Shards: 2}); err == nil {
		t.Fatal("reopening 4-shard archive with Shards 2 did not fail")
	}
}

// TestShardedSampleKeepsPartition derives a sample of a sharded archive and
// checks the subset keeps the slice count and answers queries.
func TestShardedSampleKeepsPartition(t *testing.T) {
	a, err := Create("", Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	photo, spec, err := skygen.GenerateAll(skygen.Default(6, 6000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadObjects(photo, spec); err != nil {
		t.Fatal(err)
	}
	sub, err := a.Sample(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.NumShards(); got != 3 {
		t.Fatalf("sample NumShards = %d, want 3", got)
	}
	n := sub.PhotoStore().NumRecords()
	if n == 0 || n >= a.PhotoStore().NumRecords() {
		t.Fatalf("sample holds %d of %d records", n, a.PhotoStore().NumRecords())
	}
	rows, err := sub.Query(context.Background(), "SELECT COUNT(*) FROM tag")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if int64(res[0].Values[0]) != sub.TagStore().NumRecords() {
		t.Fatalf("sample query count %v != %d records", res[0].Values[0], sub.TagStore().NumRecords())
	}
}
