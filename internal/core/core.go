// Package core assembles the paper's systems into the Science Archive's
// public API: one Archive value owns the container-clustered stores (full
// photometric table, tag vertical partition, spectroscopic table), the
// parallel query engine with its HTM index, and the mining machinery (scan
// machine, hash machine, sampling, cross-identification).
//
// A downstream user needs only this package: create or open an archive,
// load survey chunks, and query or mine it.
//
//	a, _ := core.Create("", core.Options{})
//	chunk, _ := skygen.GenerateChunk(skygen.Default(1, 100000), 0, 1)
//	a.LoadChunk(chunk)
//	rows, _ := a.Query(ctx, "SELECT objid, ra, dec FROM tag WHERE r < 20")
package core

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"sdss/internal/archive"
	"sdss/internal/catalog"
	"sdss/internal/cluster"
	"sdss/internal/hashm"
	"sdss/internal/htm"
	"sdss/internal/load"
	"sdss/internal/qe"
	"sdss/internal/query"
	"sdss/internal/sample"
	"sdss/internal/scan"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
	"sdss/internal/store"
	"sdss/internal/tiling"
)

// Options configures an archive.
type Options struct {
	// ContainerDepth is the HTM depth of clustering units (default 5).
	ContainerDepth int
	// CoverDepth is the HTM depth for query coverage (default 10).
	CoverDepth int
	// Workers sizes the engine-wide morsel worker pool (default GOMAXPROCS).
	Workers int
	// MorselRows is the target record count per scan morsel — the
	// work-stealing granularity (default 4096).
	MorselRows int
	// Shards splits every store into that many slices (default 1), each
	// independently persistable; queries scatter across all slices and
	// gather merged streams. A persisted archive remembers its shard count,
	// so reopening with Shards 0 adopts it.
	Shards int
}

// Archive is an opened Science Archive.
type Archive struct {
	target *load.Target
	engine *qe.Engine
	dir    string
}

// Create opens (or creates) an archive rooted at dir; an empty dir keeps
// all data in memory.
func Create(dir string, opts Options) (*Archive, error) {
	tgt, err := load.NewTarget(dir, opts.ContainerDepth, opts.Shards)
	if err != nil {
		return nil, err
	}
	return &Archive{
		target: tgt,
		engine: &qe.Engine{
			Photo:      tgt.Photo,
			Tag:        tgt.Tag,
			Spec:       tgt.Spec,
			CoverDepth: opts.CoverDepth,
			Workers:    opts.Workers,
			MorselRows: opts.MorselRows,
		},
		dir: dir,
	}, nil
}

// Engine exposes the query engine for advanced integration (the WWW tier,
// the benchmark harness).
func (a *Archive) Engine() *qe.Engine { return a.engine }

// PhotoStore exposes the full photometric store.
func (a *Archive) PhotoStore() *store.Sharded { return a.target.Photo }

// TagStore exposes the tag vertical partition.
func (a *Archive) TagStore() *store.Sharded { return a.target.Tag }

// SpecStore exposes the spectroscopic store.
func (a *Archive) SpecStore() *store.Sharded { return a.target.Spec }

// NumShards reports how many slices each store is split into.
func (a *Archive) NumShards() int { return a.target.Photo.NumShards() }

// LoadChunk ingests one survey chunk (photometric objects, tags, spectra).
func (a *Archive) LoadChunk(ch *skygen.Chunk) (load.Stats, error) {
	return a.target.LoadChunk(ch)
}

// LoadObjects ingests loose objects as one chunk.
func (a *Archive) LoadObjects(photo []catalog.PhotoObj, spec []catalog.SpecObj) (load.Stats, error) {
	return a.target.LoadChunk(&skygen.Chunk{Photo: photo, Spec: spec})
}

// Flush persists all stores (no-op for memory archives).
func (a *Archive) Flush() error { return a.target.Flush() }

// Sort orders every container by fine HTM ID, enabling the tightest
// in-container range pruning. Loads leave containers sorted already; call
// this after unclustered or repeated incremental loads.
func (a *Archive) Sort() { a.target.Sort() }

// QueryOptions bounds one archive query. The zero value is unbounded.
type QueryOptions struct {
	// Limit caps delivered rows (0 = unlimited); when it cuts the stream
	// short, Rows.Truncated reports true.
	Limit int
	// Offset skips that many rows before the first delivery.
	Offset int
	// Timeout aborts the query after a wall-clock duration.
	Timeout time.Duration
}

// Query parses and executes query text, streaming results.
func (a *Archive) Query(ctx context.Context, src string) (*qe.Rows, error) {
	return a.engine.ExecuteString(ctx, src)
}

// QueryRows is the typed, bounded query surface: it parses and executes
// query text, returning a stream whose Columns() carry the compiler's
// projection schema, honoring per-query limits and timeouts.
func (a *Archive) QueryRows(ctx context.Context, src string, opts QueryOptions) (*qe.Rows, error) {
	return a.engine.ExecuteStringOpts(ctx, src, qe.ExecOptions{
		Limit:   opts.Limit,
		Offset:  opts.Offset,
		Timeout: opts.Timeout,
	})
}

// Prepare compiles query text for repeated execution.
func (a *Archive) Prepare(src string) (*query.Prepared, error) {
	return query.PrepareString(src)
}

// Execute runs a prepared query.
func (a *Archive) Execute(ctx context.Context, prep *query.Prepared) (*qe.Rows, error) {
	return a.engine.Execute(ctx, prep)
}

// ExecuteOpts runs a prepared query under per-query bounds.
func (a *Archive) ExecuteOpts(ctx context.Context, prep *query.Prepared, opts QueryOptions) (*qe.Rows, error) {
	return a.engine.ExecuteOpts(ctx, prep, qe.ExecOptions{
		Limit:   opts.Limit,
		Offset:  opts.Offset,
		Timeout: opts.Timeout,
	})
}

// Explain compiles query text and returns its logical plan: the analyzed
// QET with predicates pushed below joins.
func (a *Archive) Explain(src string) (*query.PlanNode, error) {
	prep, err := query.PrepareString(src)
	if err != nil {
		return nil, err
	}
	return prep.Plan(), nil
}

// PlanQuery compiles query text through the cost-based physical planner:
// the operator tree with chosen access paths (HTM coverage versus
// zone-pruned versus full scan), hash-join build sides, and cardinality
// estimates. Execute the plan with Engine().ExecutePlan, or read it with
// Describe/Text.
func (a *Archive) PlanQuery(src string) (*qe.ExecPlan, error) {
	prep, err := query.PrepareString(src)
	if err != nil {
		return nil, err
	}
	return a.engine.Plan(prep)
}

// Cone runs a cone search on a table, streaming the projected columns.
// cols is a comma-separated projection ("objid, ra, dec"); empty selects
// every attribute.
func (a *Archive) Cone(ctx context.Context, table query.Table, raDeg, decDeg, radiusArcmin float64, cols string, opts QueryOptions) (*qe.Rows, error) {
	if cols == "" {
		cols = "*"
	}
	q := fmt.Sprintf("SELECT %s FROM %s WHERE CIRCLE(%g, %g, %g)",
		cols, table, raDeg, decDeg, radiusArcmin)
	return a.QueryRows(ctx, q, opts)
}

// ConeSearch returns the tag objects within radiusArcmin of (ra, dec). The
// tags are rebuilt from the engine's projected columns — a single indexed
// scan, not the O(n) store rescan this used to do.
func (a *Archive) ConeSearch(ctx context.Context, raDeg, decDeg, radiusArcmin float64) ([]catalog.Tag, error) {
	q := fmt.Sprintf(
		"SELECT htmid, cx, cy, cz, u, g, r, i, z, size, class FROM tag WHERE CIRCLE(%g, %g, %g)",
		raDeg, decDeg, radiusArcmin)
	rows, err := a.engine.ExecuteString(ctx, q)
	if err != nil {
		return nil, err
	}
	res, err := rows.Collect()
	if err != nil {
		return nil, err
	}
	out := make([]catalog.Tag, len(res))
	for i, r := range res {
		v := r.Values
		out[i] = catalog.Tag{
			ObjID: r.ObjID,
			HTMID: htm.ID(v[0]),
			X:     v[1], Y: v[2], Z: v[3],
			Mag: [catalog.NumBands]float32{
				float32(v[4]), float32(v[5]), float32(v[6]),
				float32(v[7]), float32(v[8]),
			},
			Size:  float32(v[9]),
			Class: catalog.Class(v[10]),
		}
	}
	return out, nil
}

// Tags materializes the whole tag table (the desktop-sized projection).
func (a *Archive) Tags() ([]catalog.Tag, error) {
	n := a.target.Tag.NumRecords()
	out := make([]catalog.Tag, 0, n)
	var t catalog.Tag
	err := a.target.Tag.Scan(nil, false, func(rec []byte) error {
		if err := t.Decode(rec); err != nil {
			return err
		}
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LensCandidates mines the archive for gravitational-lens candidates: the
// paper's "objects within 10 arcsec of each other which have identical
// colors, but may have a different brightness", run on the hash machine.
func (a *Archive) LensCandidates(maxSepArcsec, colorTol float64) ([]hashm.Pair, error) {
	cfg := hashm.Config{PairRadius: maxSepArcsec * sphere.Arcsec}
	buckets, err := hashm.HashStore(a.target.Tag, cfg, nil)
	if err != nil {
		return nil, err
	}
	return hashm.Pairs(buckets, cfg, hashm.ColorMatch(colorTol))
}

// Groups runs friends-of-friends clustering at the given linking length.
func (a *Archive) Groups(linkArcsec float64, minMembers int) ([]hashm.Group, error) {
	tags, err := a.Tags()
	if err != nil {
		return nil, err
	}
	return hashm.FriendsOfFriends(tags, hashm.Config{PairRadius: linkArcsec * sphere.Arcsec}, minMembers)
}

// CrossMatch identifies an external catalog's sources against the archive.
func (a *Archive) CrossMatch(radio []skygen.RadioSource, radiusArcsec float64) ([]hashm.Match, error) {
	tags, err := a.Tags()
	if err != nil {
		return nil, err
	}
	return hashm.CrossMatch(tags, radio, radiusArcsec*sphere.Arcsec, hashm.Config{})
}

// Sample derives a new in-memory archive holding the given fraction of
// objects, consistently across all three tables — the desktop subset.
func (a *Archive) Sample(frac float64) (*Archive, error) {
	s, err := sample.New(frac)
	if err != nil {
		return nil, err
	}
	photo, err := s.SubsetSharded(a.target.Photo)
	if err != nil {
		return nil, err
	}
	tag, err := s.SubsetSharded(a.target.Tag)
	if err != nil {
		return nil, err
	}
	spec, err := s.SubsetSharded(a.target.Spec)
	if err != nil {
		return nil, err
	}
	tgt := &load.Target{Photo: photo, Tag: tag, Spec: spec}
	return &Archive{
		target: tgt,
		engine: &qe.Engine{
			Photo:      photo,
			Tag:        tag,
			Spec:       spec,
			CoverDepth: a.engine.CoverDepth,
			Workers:    a.engine.Workers,
			MorselRows: a.engine.MorselRows,
		},
	}, nil
}

// ScanMachine builds a scan machine over the full photometric table,
// partitioned across a simulated cluster of n nodes, each throttled to
// bytesPerSec (0 = unthrottled).
func (a *Archive) ScanMachine(nodes int, bytesPerSec float64) (*scan.Machine, *cluster.Fabric, error) {
	fabric, err := cluster.New(nodes, bytesPerSec)
	if err != nil {
		return nil, nil, err
	}
	return scan.New(a.target.Photo, fabric), fabric, nil
}

// WWW returns the public HTTP tier over this archive.
func (a *Archive) WWW() http.Handler {
	return archive.NewWWW(a.engine).Handler()
}

// PlanTiles runs the spectroscopic tiling optimizer over the archive's
// spectroscopic targets: overlapping 3° tiles placed to maximize overlaps
// at areas of highest target density, 640 fibers each.
func (a *Archive) PlanTiles(opts tiling.Options) (*tiling.Result, error) {
	var targets []tiling.Target
	var s catalog.SpecObj
	err := a.target.Spec.Scan(nil, false, func(rec []byte) error {
		if err := s.Decode(rec); err != nil {
			return err
		}
		pos, err := htm.Center(s.HTMID)
		if err != nil {
			return err
		}
		targets = append(targets, tiling.Target{ID: uint64(s.ObjID), Pos: pos})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tiling.Plan(targets, opts)
}

// Summary reports the archive's holdings.
type Summary struct {
	PhotoObjects int64
	TagObjects   int64
	Spectra      int64
	Containers   int
	Shards       int
	PhotoBytes   int64
	TagBytes     int64
	SpecBytes    int64
	// ZoneMapBytes is the resident footprint of the per-container
	// min/max attribute statistics across all stores and slices.
	ZoneMapBytes int64
	// ColBlkEncodedBytes is the compressed column-block footprint across
	// all stores and slices; ColBlkRawBytes is the raw footprint of the
	// columns the resident slabs cover. Their ratio is the archive's
	// effective columnar compression.
	ColBlkEncodedBytes int64
	ColBlkRawBytes     int64
}

// Stats summarizes the archive.
func (a *Archive) Stats() Summary {
	var enc, raw int64
	for _, st := range []*store.Sharded{a.target.Photo, a.target.Tag, a.target.Spec} {
		e, r := st.ColBlkBytes()
		enc += e
		raw += r
	}
	return Summary{
		Shards:             a.target.Photo.NumShards(),
		PhotoObjects:       a.target.Photo.NumRecords(),
		TagObjects:         a.target.Tag.NumRecords(),
		Spectra:            a.target.Spec.NumRecords(),
		Containers:         a.target.Photo.NumContainers(),
		PhotoBytes:         a.target.Photo.Bytes(),
		TagBytes:           a.target.Tag.Bytes(),
		SpecBytes:          a.target.Spec.Bytes(),
		ZoneMapBytes:       a.target.Photo.ZoneBytes() + a.target.Tag.ZoneBytes() + a.target.Spec.ZoneBytes(),
		ColBlkEncodedBytes: enc,
		ColBlkRawBytes:     raw,
	}
}
