package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"sdss/internal/load"
	"sdss/internal/skygen"
)

// TestFITSChunkJoinParity exercises the full skygen → skyload → skyquery
// path: chunks are written as multi-HDU FITS files, ingested skyload-style
// into an on-disk archive, and the flagship photo⋈spec join must return
// the same rows, bit-identical, as an in-memory archive loaded from the
// same chunks directly. Before the SPECOBJ HDU existed this join silently
// returned zero rows from any disk-built archive.
func TestFITSChunkJoinParity(t *testing.T) {
	dir := t.TempDir()
	chunkDir := filepath.Join(dir, "chunks")
	if err := os.MkdirAll(chunkDir, 0o755); err != nil {
		t.Fatal(err)
	}
	p := skygen.Default(11, 3000)
	const nChunks = 3

	disk, err := Create(filepath.Join(dir, "archive"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wantSpec int
	for i := 0; i < nChunks; i++ {
		ch, err := skygen.GenerateChunk(p, i, nChunks)
		if err != nil {
			t.Fatal(err)
		}
		wantSpec += len(ch.Spec)
		path := filepath.Join(chunkDir, "chunk.fits")
		if err := load.WriteChunkFile(path, ch, 256); err != nil {
			t.Fatal(err)
		}
		got, st, err := load.ReadChunkFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Warnings) != 0 {
			t.Fatalf("chunk %d: warnings on a fresh multi-HDU file: %v", i, st.Warnings)
		}
		if _, err := disk.LoadChunk(got); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.LoadChunk(ch); err != nil {
			t.Fatal(err)
		}
	}
	disk.Sort()
	if err := disk.Flush(); err != nil {
		t.Fatal(err)
	}
	mem.Sort()

	if wantSpec == 0 {
		t.Fatal("survey generated no spectra; the join parity check is vacuous")
	}
	if got := disk.Stats().Spectra; got != int64(wantSpec) {
		t.Fatalf("disk archive holds %d spectra, want %d", got, wantSpec)
	}

	const q = "SELECT p.objid, s.z FROM photoobj p JOIN specobj s ON p.objid = s.objid ORDER BY p.objid"
	collect := func(a *Archive) []struct {
		id uint64
		z  float64
	} {
		t.Helper()
		rows, err := a.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]struct {
			id uint64
			z  float64
		}, len(res))
		for i, r := range res {
			out[i].id = uint64(r.ObjID)
			out[i].z = r.Values[1]
		}
		return out
	}
	diskRows := collect(disk)
	memRows := collect(mem)
	if len(diskRows) == 0 {
		t.Fatal("photo⋈spec join on the FITS-loaded archive returned zero rows")
	}
	if len(diskRows) != len(memRows) {
		t.Fatalf("join rows: disk %d, memory %d", len(diskRows), len(memRows))
	}
	for i := range diskRows {
		if diskRows[i] != memRows[i] {
			t.Fatalf("join row %d differs: disk %+v, memory %+v", i, diskRows[i], memRows[i])
		}
	}
}
