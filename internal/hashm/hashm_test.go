package hashm

import (
	"math"
	"math/rand"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

func testTags(t testing.TB, n int, seed int64) []catalog.Tag {
	t.Helper()
	photo, _, err := skygen.GenerateAll(skygen.Default(seed, n), 1)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]catalog.Tag, len(photo))
	for i := range photo {
		tags[i] = catalog.MakeTag(&photo[i])
	}
	return tags
}

func TestHashHomeAndMargins(t *testing.T) {
	tags := testTags(t, 2000, 1)
	cfg := Config{BucketDepth: 6, PairRadius: 2 * sphere.Arcmin}
	buckets, err := Hash(tags, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every object must be Home in exactly one bucket.
	homes := make(map[catalog.ObjID]int)
	copies := make(map[catalog.ObjID]int)
	for bid, entries := range buckets {
		if bid.Depth() != 6 {
			t.Fatalf("bucket %v at depth %d, want 6", bid, bid.Depth())
		}
		for _, e := range entries {
			if e.Home {
				homes[e.Tag.ObjID]++
			} else {
				copies[e.Tag.ObjID]++
			}
		}
	}
	if len(homes) != len(tags) {
		t.Fatalf("%d objects have homes, want %d", len(homes), len(tags))
	}
	for id, n := range homes {
		if n != 1 {
			t.Fatalf("object %d home in %d buckets", id, n)
		}
	}
	// Some objects near edges must have margin copies, but margins must
	// stay a small fraction at this radius/bucket ratio.
	var totalCopies int
	for _, n := range copies {
		totalCopies += n
	}
	if totalCopies == 0 {
		t.Error("no margin copies at all — replication broken")
	}
	if totalCopies > len(tags) {
		t.Errorf("margin blowup: %d copies for %d objects", totalCopies, len(tags))
	}
}

func TestHashFilter(t *testing.T) {
	tags := testTags(t, 1000, 2)
	cfg := Config{PairRadius: sphere.Arcmin}
	onlyGalaxies := func(tg *catalog.Tag) bool { return tg.Class == catalog.ClassGalaxy }
	buckets, err := Hash(tags, cfg, onlyGalaxies)
	if err != nil {
		t.Fatal(err)
	}
	for _, entries := range buckets {
		for _, e := range entries {
			if e.Tag.Class != catalog.ClassGalaxy {
				t.Fatal("filter ignored")
			}
		}
	}
	if _, err := Hash(tags, Config{}, nil); err == nil {
		t.Error("zero PairRadius accepted")
	}
}

func TestPairsMatchNaive(t *testing.T) {
	// The central correctness property: hash-machine pairs must be
	// exactly the all-pairs result — margin replication must not lose
	// cross-boundary pairs, and the exactly-once rule must not duplicate.
	tags := testTags(t, 3000, 3)
	for _, radius := range []float64{10 * sphere.Arcsec, 1 * sphere.Arcmin, 5 * sphere.Arcmin} {
		cfg := Config{BucketDepth: 7, PairRadius: radius}
		buckets, err := Hash(tags, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Pairs(buckets, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := NaivePairs(tags, cfg, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("radius %v: hash machine %d pairs, naive %d", radius, len(got), len(want))
		}
		for i := range got {
			if got[i].A.ObjID != want[i].A.ObjID || got[i].B.ObjID != want[i].B.ObjID {
				t.Fatalf("radius %v: pair %d differs: (%d,%d) vs (%d,%d)", radius, i,
					got[i].A.ObjID, got[i].B.ObjID, want[i].A.ObjID, want[i].B.ObjID)
			}
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
				t.Fatalf("pair distance differs")
			}
		}
	}
}

func TestPairsAcrossBucketBoundary(t *testing.T) {
	// Two objects straddling a bucket boundary must still pair. Construct
	// them explicitly on either side of the RA=90 great circle (a face
	// boundary, hence a boundary at every depth).
	var a, b catalog.PhotoObj
	a.ObjID, b.ObjID = 1, 2
	if err := a.SetPos(89.9995, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.SetPos(90.0005, 10); err != nil {
		t.Fatal(err)
	}
	tags := []catalog.Tag{catalog.MakeTag(&a), catalog.MakeTag(&b)}
	cfg := Config{BucketDepth: 8, PairRadius: 10 * sphere.Arcsec}
	buckets, err := Hash(tags, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Pairs(buckets, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("boundary pair not found: %d pairs", len(pairs))
	}
}

func TestColorMatchPredicate(t *testing.T) {
	var a, b catalog.Tag
	a.Mag = [5]float32{20, 19, 18.5, 18.2, 18.0}
	// Same colors, 1.5 mag brighter everywhere (the lens case).
	for i := range b.Mag {
		b.Mag[i] = a.Mag[i] - 1.5
	}
	if !ColorMatch(0.05)(&a, &b) {
		t.Error("identical colors rejected")
	}
	b.Mag[1] += 0.3 // break one color
	if ColorMatch(0.05)(&a, &b) {
		t.Error("different colors accepted")
	}
}

func TestLensWorkload(t *testing.T) {
	// Plant synthetic lens pairs in a background population and verify the
	// machine recovers exactly the planted pairs.
	tags := testTags(t, 2000, 4)
	rng := rand.New(rand.NewSource(99))
	const nLenses = 12
	var next catalog.ObjID = 1 << 50
	var planted []catalog.ObjID
	for i := 0; i < nLenses; i++ {
		base := tags[rng.Intn(len(tags))]
		var img catalog.PhotoObj
		img.ObjID = next
		next++
		// Second image: 3 arcsec away, same colors, 1 mag fainter.
		pos := base.Pos()
		e1 := pos.Orthogonal()
		shifted := pos.Add(e1.Scale(3 * sphere.Arcsec)).Normalize()
		ra, dec := sphere.ToRADec(shifted)
		if err := img.SetPos(ra, dec); err != nil {
			t.Fatal(err)
		}
		for b := range img.Mag {
			img.Mag[b] = base.Mag[b] + 1
		}
		img.Class = catalog.ClassQuasar
		tag := catalog.MakeTag(&img)
		tags = append(tags, tag)
		planted = append(planted, base.ObjID)
	}
	cfg := Config{BucketDepth: 7, PairRadius: 10 * sphere.Arcsec}
	buckets, err := Hash(tags, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Pairs(buckets, cfg, ColorMatch(0.02))
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[catalog.ObjID]bool)
	for _, p := range pairs {
		found[p.A.ObjID] = true
		found[p.B.ObjID] = true
	}
	for _, id := range planted {
		if !found[id] {
			t.Errorf("planted lens around object %d not recovered", id)
		}
	}
}

func TestFriendsOfFriends(t *testing.T) {
	// Plant two tight groups far apart; FoF must find both, separated.
	var tags []catalog.Tag
	var id catalog.ObjID = 1
	plant := func(ra, dec float64, n int) {
		for i := 0; i < n; i++ {
			var p catalog.PhotoObj
			p.ObjID = id
			id++
			if err := p.SetPos(ra+float64(i)*2e-4, dec); err != nil {
				t.Fatal(err)
			}
			tags = append(tags, catalog.MakeTag(&p))
		}
	}
	plant(150, 40, 6)
	plant(210, 35, 4)
	// Isolated singles.
	plant(30, 50, 1)
	plant(300, 60, 1)

	cfg := Config{BucketDepth: 6, PairRadius: 5 * sphere.Arcsec}
	groups, err := FriendsOfFriends(tags, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("found %d groups, want 2", len(groups))
	}
	if len(groups[0].Members) != 6 || len(groups[1].Members) != 4 {
		t.Errorf("group sizes %d, %d; want 6, 4", len(groups[0].Members), len(groups[1].Members))
	}
	for _, g := range groups {
		if !g.Center.IsUnit(1e-9) {
			t.Error("group center not unit")
		}
		if g.Radius <= 0 || g.Radius > sphere.Arcmin {
			t.Errorf("group radius %v implausible", g.Radius)
		}
	}
}

func TestCrossMatchRecoversTruth(t *testing.T) {
	photo, _, err := skygen.GenerateAll(skygen.Default(5, 4000), 1)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]catalog.Tag, len(photo))
	for i := range photo {
		tags[i] = catalog.MakeTag(&photo[i])
	}
	radio := skygen.RadioCatalog(7, photo, 0.9, 1.0, 0.3)
	matches, err := CrossMatch(tags, radio, 5*sphere.Arcsec, Config{BucketDepth: 7})
	if err != nil {
		t.Fatal(err)
	}
	byRadio := make(map[uint64]Match)
	for _, m := range matches {
		byRadio[m.RadioID] = m
	}
	var truthMatched, correct, falseMatches int
	for i := range radio {
		r := &radio[i]
		m, got := byRadio[r.ID]
		if r.Matched {
			truthMatched++
			if got && m.ObjID == r.TruthID {
				correct++
			}
		} else if got {
			falseMatches++
		}
	}
	if truthMatched == 0 {
		t.Fatal("no truth matches in radio catalog")
	}
	// With 1 arcsec scatter and a 5 arcsec radius, nearly all true
	// counterparts must be recovered correctly.
	if frac := float64(correct) / float64(truthMatched); frac < 0.95 {
		t.Errorf("recovered %.1f%% of true matches, want ≥ 95%%", 100*frac)
	}
	// Spurious sources occasionally land near a real object; just bound it.
	if falseMatches > len(radio)/5 {
		t.Errorf("too many false matches: %d", falseMatches)
	}
}

func BenchmarkHashPhase(b *testing.B) {
	tags := testTags(b, 10000, 1)
	cfg := Config{BucketDepth: 7, PairRadius: 10 * sphere.Arcsec}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hash(tags, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairPhase(b *testing.B) {
	tags := testTags(b, 10000, 1)
	cfg := Config{BucketDepth: 7, PairRadius: 10 * sphere.Arcsec}
	buckets, err := Hash(tags, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pairs(buckets, cfg, ColorMatch(0.05)); err != nil {
			b.Fatal(err)
		}
	}
}
