// Package hashm implements the paper's hash machine: the second class of
// server, which "performs comparisons within data clusters".
//
// "The hash phase scans the entire dataset, selects a subset of the objects
// based on some predicate, and hashes each object to the appropriate
// buckets — a single object may go to several buckets (to allow objects
// near the edges of a region to go to all the neighboring regions as
// well). In a second phase all the objects in a bucket are compared to one
// another." The operation is the spatial analogue of a relational
// hash-join [DeWitt92], and parallelizes the same way: buckets are
// independent units of phase-2 work.
//
// Buckets are HTM trixels at a configurable depth. Margin replication is
// exact, not heuristic: an object is copied into every bucket whose trixel
// lies within the pair radius of the object, computed with the same
// region-coverage machinery queries use. Each emitted pair is produced
// exactly once (in the home bucket of its lower-ID member).
package hashm

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/region"
	"sdss/internal/sphere"
)

// Config tunes the machine.
type Config struct {
	// BucketDepth is the HTM depth of hash buckets. Deeper buckets mean
	// more, smaller phase-2 units; the bucket size should comfortably
	// exceed the pair radius. Default 7 (~25 arcmin trixels).
	BucketDepth int
	// PairRadius is the maximum pair separation in radians; it also sets
	// the margin width for edge replication.
	PairRadius float64
	// Workers bounds phase-2 parallelism. Default GOMAXPROCS.
	Workers int
}

func (c Config) bucketDepth() int {
	if c.BucketDepth > 0 {
		return c.BucketDepth
	}
	return 7
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Entry is one object in a bucket. Home marks the single bucket that owns
// the object; margin copies carry Home = false.
type Entry struct {
	Tag  catalog.Tag
	Home bool
}

// Buckets is the phase-1 output: bucket trixel → member entries.
type Buckets map[htm.ID][]Entry

// Hash runs phase 1 over a slice of tag objects. The filter (nil = all)
// is the paper's "selects a subset of the objects based on some
// predicate". Each object lands in its home bucket and is replicated into
// every bucket whose trixel is within PairRadius.
func Hash(tags []catalog.Tag, cfg Config, filter func(*catalog.Tag) bool) (Buckets, error) {
	if cfg.PairRadius <= 0 {
		return nil, fmt.Errorf("hashm: PairRadius must be positive")
	}
	depth := cfg.bucketDepth()
	buckets := make(Buckets)
	// Cached inward edge normals per bucket: an object whose distance to
	// all three bucket edges exceeds PairRadius cannot spill into a
	// neighbor, so the (expensive) margin coverage is skipped. Distance to
	// a great circle is asin(p·n̂), so the test is three dot products
	// against sin(PairRadius).
	type bucketEdges struct{ n0, n1, n2 sphere.Vec3 }
	edges := make(map[htm.ID]bucketEdges)
	sinR := math.Sin(cfg.PairRadius)
	for i := range tags {
		t := &tags[i]
		if filter != nil && !filter(t) {
			continue
		}
		home := t.HTMID.AtDepth(depth)
		if home == htm.Invalid {
			return nil, fmt.Errorf("hashm: object %d has invalid HTM ID", t.ObjID)
		}
		buckets[home] = append(buckets[home], Entry{Tag: *t, Home: true})
		eg, ok := edges[home]
		if !ok {
			tri, err := htm.Vertices(home)
			if err != nil {
				return nil, err
			}
			eg = bucketEdges{
				n0: tri.V[0].Cross(tri.V[1]).Normalize(),
				n1: tri.V[1].Cross(tri.V[2]).Normalize(),
				n2: tri.V[2].Cross(tri.V[0]).Normalize(),
			}
			edges[home] = eg
		}
		pos := t.Pos()
		if pos.Dot(eg.n0) >= sinR && pos.Dot(eg.n1) >= sinR && pos.Dot(eg.n2) >= sinR {
			continue // interior object: no margin copies needed
		}
		// Margin replication: cover the cone of PairRadius around the
		// object; every other bucket it touches gets a copy.
		cov, err := region.Cover(region.Circle(pos, cfg.PairRadius), depth)
		if err != nil {
			return nil, err
		}
		seen := map[htm.ID]struct{}{home: {}}
		addTrixels := func(trixels []htm.ID) {
			for _, id := range trixels {
				// Coverage trixels are at depth ≤ the bucket depth; a
				// shallow "full" trixel expands to several buckets.
				lo, hi := id.RangeAtDepth(depth)
				if lo == htm.Invalid {
					continue
				}
				for b := lo; b <= hi; b++ {
					if _, dup := seen[b]; dup {
						continue
					}
					seen[b] = struct{}{}
					buckets[b] = append(buckets[b], Entry{Tag: *t, Home: false})
				}
			}
		}
		addTrixels(cov.Full)
		addTrixels(cov.Partial)
	}
	return buckets, nil
}

// TagScanner is the store surface HashStore needs: a full-scan source of
// encoded tag records. Both store.Store and store.Sharded satisfy it.
type TagScanner interface {
	Scan(coverage *htm.RangeSet, fineFilter bool, fn func(rec []byte) error) error
}

// HashStore runs phase 1 directly over a tag store (the scan that feeds
// the hash machine).
func HashStore(st TagScanner, cfg Config, filter func(*catalog.Tag) bool) (Buckets, error) {
	var tags []catalog.Tag
	var t catalog.Tag
	err := st.Scan(nil, false, func(rec []byte) error {
		if err := t.Decode(rec); err != nil {
			return err
		}
		if filter == nil || filter(&t) {
			tags = append(tags, t)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return Hash(tags, cfg, nil)
}

// Pair is one emitted object pair, ordered A.ObjID < B.ObjID.
type Pair struct {
	A, B catalog.Tag
	Dist float64 // angular separation, radians
}

// Pairs runs phase 2: within every bucket, all entries are compared
// pairwise; pairs within PairRadius that satisfy pred (nil = all) are
// emitted exactly once. Buckets are processed in parallel by cfg.Workers
// workers.
func Pairs(buckets Buckets, cfg Config, pred func(a, b *catalog.Tag) bool) ([]Pair, error) {
	if cfg.PairRadius <= 0 {
		return nil, fmt.Errorf("hashm: PairRadius must be positive")
	}
	ids := make([]htm.ID, 0, len(buckets))
	for id := range buckets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	cosMax := math.Cos(cfg.PairRadius)
	work := make(chan htm.ID, len(ids))
	for _, id := range ids {
		work <- id
	}
	close(work)

	var mu sync.Mutex
	var out []Pair
	var wg sync.WaitGroup
	nw := cfg.workers()
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			var local []Pair
			for id := range work {
				entries := buckets[id]
				for i := 0; i < len(entries); i++ {
					a := &entries[i]
					for j := i + 1; j < len(entries); j++ {
						b := &entries[j]
						lo, hi := a, b
						if lo.Tag.ObjID > hi.Tag.ObjID {
							lo, hi = hi, lo
						}
						if lo.Tag.ObjID == hi.Tag.ObjID {
							continue // object meeting its own margin copy
						}
						// Exactly-once rule: only the home bucket of the
						// lower-ID member emits the pair.
						if !lo.Home {
							continue
						}
						aPos := sphere.Vec3{X: lo.Tag.X, Y: lo.Tag.Y, Z: lo.Tag.Z}
						bPos := sphere.Vec3{X: hi.Tag.X, Y: hi.Tag.Y, Z: hi.Tag.Z}
						if sphere.CosDist(aPos, bPos) < cosMax {
							continue
						}
						if pred != nil && !pred(&lo.Tag, &hi.Tag) {
							continue
						}
						local = append(local, Pair{
							A: lo.Tag, B: hi.Tag,
							Dist: sphere.Dist(aPos, bPos),
						})
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				out = append(out, local...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		if out[i].A.ObjID != out[j].A.ObjID {
			return out[i].A.ObjID < out[j].A.ObjID
		}
		return out[i].B.ObjID < out[j].B.ObjID
	})
	return out, nil
}

// NaivePairs is the all-pairs baseline: O(n²) over the filtered objects.
// It exists to verify the hash machine's completeness and to quantify the
// speedup (experiment E9).
func NaivePairs(tags []catalog.Tag, cfg Config, filter func(*catalog.Tag) bool, pred func(a, b *catalog.Tag) bool) []Pair {
	var kept []catalog.Tag
	for i := range tags {
		if filter == nil || filter(&tags[i]) {
			kept = append(kept, tags[i])
		}
	}
	cosMax := math.Cos(cfg.PairRadius)
	var out []Pair
	for i := 0; i < len(kept); i++ {
		for j := i + 1; j < len(kept); j++ {
			a, b := &kept[i], &kept[j]
			if a.ObjID > b.ObjID {
				a, b = b, a
			}
			aPos := sphere.Vec3{X: a.X, Y: a.Y, Z: a.Z}
			bPos := sphere.Vec3{X: b.X, Y: b.Y, Z: b.Z}
			if sphere.CosDist(aPos, bPos) < cosMax {
				continue
			}
			if pred != nil && !pred(a, b) {
				continue
			}
			out = append(out, Pair{A: *a, B: *b, Dist: sphere.Dist(aPos, bPos)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A.ObjID != out[j].A.ObjID {
			return out[i].A.ObjID < out[j].A.ObjID
		}
		return out[i].B.ObjID < out[j].B.ObjID
	})
	return out
}

// ColorMatch returns the paper's gravitational-lens predicate: "objects
// within 10 arcsec of each other which have identical colors, but may have
// a different brightness". Colors (adjacent band differences) must agree
// within tol magnitudes; total brightness is free.
func ColorMatch(tol float64) func(a, b *catalog.Tag) bool {
	return func(a, b *catalog.Tag) bool {
		for band := 0; band < catalog.NumBands-1; band++ {
			ca := a.Mag[band] - a.Mag[band+1]
			cb := b.Mag[band] - b.Mag[band+1]
			if math.Abs(float64(ca-cb)) > tol {
				return false
			}
		}
		return true
	}
}
