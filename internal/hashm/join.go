// Generic spatial join on the hash machine's partition scheme. The query
// engine's NEIGHBORS operator feeds arbitrary result rows through this
// bridge: each row becomes an Item (identity + unit-sphere position + the
// caller's row index), the build side is hashed into coarse HTM-trixel
// partitions with exact margin replication at partition boundaries, and each
// probe row searches only its home partition — "the spatial analogue of a
// relational hash-join", exactly as the paper frames it.
//
// Within a partition, candidates are held sorted by their z coordinate
// (sin declination): a probe binary-searches the declination band
// [dec-r, dec+r] and distance-tests only the handful of rows inside it —
// the Gray/Szalay zones algorithm, applied per partition. That replaces the
// old flat single-depth bucket grid, whose per-item circle coverage at the
// radius-matched depth was the NEIGHBORS hotspot: partitions sit at the
// store's container depth, so the boundary margin is a tiny fraction of the
// items and everything else is one trixel lookup plus a band scan.
package hashm

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/region"
	"sdss/internal/sphere"
)

// Item is one row entering a spatial join: its object identity, position on
// the unit sphere, and the caller's row index (carried back in IndexPair).
// Key, when nonzero, is the item's fine HTM trixel (any depth at or below
// the partition depth's ancestor chain, e.g. the store's embedded depth-20
// record key): the index then derives the home partition with a bit shift
// instead of a root-to-leaf sphere walk — the dominant per-item cost at
// container-depth partitions. A zero Key falls back to the walk.
type Item struct {
	ID  catalog.ObjID
	Key htm.ID
	Pos sphere.Vec3
	Row int32
}

// homeTrixel returns the partition trixel owning an item: derived from the
// embedded key when present, located on the sphere otherwise.
func homeTrixel(key htm.ID, pos sphere.Vec3, depth int) (htm.ID, error) {
	if key != 0 {
		if home := key.AtDepth(depth); home != htm.Invalid {
			return home, nil
		}
	}
	return htm.Lookup(pos, depth)
}

// IndexPair is one emitted join pair: row indexes into the caller's left
// and right slices, plus the angular separation in radians.
type IndexPair struct {
	Left, Right int32
	Dist        float64
}

// PartitionDepth picks the spatial-join partition depth for a pair radius:
// the store's container depth — so partitions align with the clustering
// units the planner's coverage machinery already reasons about — coarsened
// while partition trixels do not comfortably exceed the radius (margin
// replication must stay a boundary effect, not the common case).
func PartitionDepth(containerDepth int, radius float64) int {
	depth := containerDepth
	for depth > 0 && htm.TrixelAngle(depth) < 4*radius {
		depth--
	}
	return depth
}

// partition is one trixel's slice of the build side, sorted by Pos.Z after
// Finish so probes can binary-search the declination band.
type partition struct {
	items []Item
}

// partEdges caches a partition trixel's edge-plane normals for the
// interior-item shortcut.
type partEdges struct{ n0, n1, n2 sphere.Vec3 }

// SpatialIndex is the build side of the partitioned neighbor join: items
// hashed into coarse trixel partitions with exact margin replication. Build
// with Insert (single goroutine per index; build shards concurrently into
// separate indexes and MergeOffset them), then Finish, then Probe freely
// from any number of goroutines.
type SpatialIndex struct {
	depth    int
	radius   float64
	sinR     float64
	cosMax   float64
	parts    map[htm.ID]*partition
	edges    map[htm.ID]partEdges
	finished bool
}

// NewSpatialIndex returns an empty index over depth-d partitions. The
// interior-item shortcut compares edge distances against sin(radius), which
// is only conservative up to π/2; the parser caps NEIGHBORS at 90°, this
// guards direct callers.
func NewSpatialIndex(radius float64, depth int) (*SpatialIndex, error) {
	if radius <= 0 || radius > math.Pi/2 {
		return nil, fmt.Errorf("hashm: join radius must be in (0, π/2] radians, got %g", radius)
	}
	if depth < 0 || depth > htm.MaxDepth {
		return nil, fmt.Errorf("hashm: partition depth %d outside [0, %d]", depth, htm.MaxDepth)
	}
	return &SpatialIndex{
		depth:  depth,
		radius: radius,
		sinR:   math.Sin(radius),
		cosMax: math.Cos(radius),
		parts:  make(map[htm.ID]*partition),
		edges:  make(map[htm.ID]partEdges),
	}, nil
}

// Depth returns the partition depth.
func (x *SpatialIndex) Depth() int { return x.depth }

// Partitions returns the number of occupied partitions.
func (x *SpatialIndex) Partitions() int { return len(x.parts) }

// add appends an item to one partition.
func (x *SpatialIndex) add(id htm.ID, it Item) {
	p := x.parts[id]
	if p == nil {
		p = &partition{}
		x.parts[id] = p
	}
	p.items = append(p.items, it)
}

// Insert hashes one item into its home partition and replicates it into
// every other partition whose trixel lies within radius — so probing any
// single partition sees every item within radius of any point inside that
// partition's trixel. Interior items (further than radius from every
// partition edge) skip the margin coverage entirely; at container-depth
// partitions that is the overwhelming majority.
func (x *SpatialIndex) Insert(it Item) error {
	home, err := homeTrixel(it.Key, it.Pos, x.depth)
	if err != nil {
		return fmt.Errorf("hashm: item %d: %w", it.ID, err)
	}
	x.add(home, it)
	eg, ok := x.edges[home]
	if !ok {
		tri, err := htm.Vertices(home)
		if err != nil {
			return err
		}
		eg = partEdges{
			n0: tri.V[0].Cross(tri.V[1]).Normalize(),
			n1: tri.V[1].Cross(tri.V[2]).Normalize(),
			n2: tri.V[2].Cross(tri.V[0]).Normalize(),
		}
		x.edges[home] = eg
	}
	if it.Pos.Dot(eg.n0) >= x.sinR && it.Pos.Dot(eg.n1) >= x.sinR && it.Pos.Dot(eg.n2) >= x.sinR {
		return nil
	}
	cov, err := region.Cover(region.Circle(it.Pos, x.radius), x.depth)
	if err != nil {
		return err
	}
	seen := map[htm.ID]struct{}{home: {}}
	addTrixels := func(trixels []htm.ID) {
		for _, id := range trixels {
			lo, hi := id.RangeAtDepth(x.depth)
			if lo == htm.Invalid {
				continue
			}
			for b := lo; b <= hi; b++ {
				if _, dup := seen[b]; dup {
					continue
				}
				seen[b] = struct{}{}
				x.add(b, it)
			}
		}
	}
	addTrixels(cov.Full)
	addTrixels(cov.Partial)
	return nil
}

// MergeOffset folds another index (same radius and depth) into this one,
// shifting every merged item's Row by rowOffset — the merge step after
// per-shard builders each indexed their own stream against a local row
// slice. Call in shard order for deterministic partition contents.
func (x *SpatialIndex) MergeOffset(other *SpatialIndex, rowOffset int32) {
	for id, p := range other.parts {
		dst := x.parts[id]
		if dst == nil {
			dst = &partition{items: make([]Item, 0, len(p.items))}
			x.parts[id] = dst
		}
		for _, it := range p.items {
			it.Row += rowOffset
			dst.items = append(dst.items, it)
		}
	}
}

// Finish sorts every partition by z (sin declination), ties broken by row
// index so the index is deterministic regardless of build concurrency.
// Partitions sort in parallel across workers goroutines (0 = GOMAXPROCS).
func (x *SpatialIndex) Finish(workers int) {
	if x.finished {
		return
	}
	x.finished = true
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	work := make(chan *partition, len(x.parts))
	for _, p := range x.parts {
		work <- p
	}
	close(work)
	if workers > len(x.parts) {
		workers = len(x.parts)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				items := p.items
				sort.Slice(items, func(i, j int) bool {
					if items[i].Pos.Z != items[j].Pos.Z {
						return items[i].Pos.Z < items[j].Pos.Z
					}
					return items[i].Row < items[j].Row
				})
			}
		}()
	}
	wg.Wait()
}

// zBand returns the [zlo, zhi] range of z = sin(dec) that any point within
// radius of pos can occupy: the declination band of the zones algorithm.
// Poles and RA wraparound need no special casing — z is monotone in
// declination and independent of RA.
func (x *SpatialIndex) zBand(z float64) (zlo, zhi float64) {
	if z > 1 {
		z = 1
	} else if z < -1 {
		z = -1
	}
	dec := math.Asin(z)
	lo, hi := dec-x.radius, dec+x.radius
	if lo < -math.Pi/2 {
		lo = -math.Pi / 2
	}
	if hi > math.Pi/2 {
		hi = math.Pi / 2
	}
	return math.Sin(lo), math.Sin(hi)
}

// Probe emits every indexed item within radius of the probe item, identity
// pairs (it.ID == probe.ID) excluded, by scanning the home partition's
// declination band (probe.Row is not used). Margin replication on the build
// side guarantees each qualifying item appears in the probe's home
// partition exactly once. emit returning false stops the probe; Probe then
// reports false. Safe for concurrent use after Finish.
func (x *SpatialIndex) Probe(probe Item, emit func(it Item, dist float64) bool) (bool, error) {
	home, err := homeTrixel(probe.Key, probe.Pos, x.depth)
	if err != nil {
		return true, fmt.Errorf("hashm: probe %d: %w", probe.ID, err)
	}
	p := x.parts[home]
	if p == nil {
		return true, nil
	}
	zlo, zhi := x.zBand(probe.Pos.Z)
	items := p.items
	i := sort.Search(len(items), func(k int) bool { return items[k].Pos.Z >= zlo })
	for ; i < len(items) && items[i].Pos.Z <= zhi; i++ {
		it := items[i]
		if it.ID == probe.ID {
			continue // identity pair
		}
		if sphere.CosDist(probe.Pos, it.Pos) < x.cosMax {
			continue
		}
		if !emit(it, sphere.Dist(probe.Pos, it.Pos)) {
			return false, nil
		}
	}
	return true, nil
}

// JoinItems emits every (left, right) pair within radius radians, except
// identity pairs (same ObjID on both sides, which a same-table join would
// otherwise always produce at distance zero). The right side builds a
// partitioned index with margin replication; left items probe only their
// home partition, so each pair is discovered exactly once. Probes run in
// parallel across workers goroutines (0 = GOMAXPROCS); pairs return sorted
// by (left row, right row), deterministic regardless of worker count.
func JoinItems(left, right []Item, radius float64, workers int) ([]IndexPair, error) {
	idx, err := NewSpatialIndex(radius, PartitionDepth(5, radius))
	if err != nil {
		return nil, err
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, nil
	}
	for i := range right {
		if err := idx.Insert(right[i]); err != nil {
			return nil, err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx.Finish(workers)

	chunk := (len(left) + workers - 1) / workers
	outs := make([][]IndexPair, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo >= len(left) {
			break
		}
		if hi > len(left) {
			hi = len(left)
		}
		wg.Add(1)
		go func(w int, probes []Item) {
			defer wg.Done()
			var local []IndexPair
			for _, l := range probes {
				_, err := idx.Probe(l, func(r Item, dist float64) bool {
					local = append(local, IndexPair{Left: l.Row, Right: r.Row, Dist: dist})
					return true
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
			outs[w] = local
		}(w, left[lo:hi])
	}
	wg.Wait()
	var out []IndexPair
	for w := range outs {
		if errs[w] != nil {
			return nil, errs[w]
		}
		out = append(out, outs[w]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out, nil
}
