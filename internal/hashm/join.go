// Generic spatial join on the hash machine's bucket scheme. The query
// engine's NEIGHBORS operator feeds arbitrary result rows through this
// bridge: each row becomes an Item (identity + unit-sphere position + the
// caller's row index), the right side is hashed into HTM-trixel buckets
// with exact margin replication, and the left side probes its home bucket —
// the same two-phase shape Hash/Pairs run over tag objects, generalized so
// any pair of row streams can neighbor-join.
package hashm

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/region"
	"sdss/internal/sphere"
)

// Item is one row entering a spatial join: its object identity, position on
// the unit sphere, and the caller's row index (carried back in IndexPair).
type Item struct {
	ID  catalog.ObjID
	Pos sphere.Vec3
	Row int32
}

// IndexPair is one emitted join pair: row indexes into the caller's left
// and right slices, plus the angular separation in radians.
type IndexPair struct {
	Left, Right int32
	Dist        float64
}

// JoinDepth picks a bucket depth for a pair radius: the deepest depth whose
// trixels still comfortably exceed the radius (so margin replication stays
// cheap), clamped to [5, 12]. Depth-d trixels are roughly 90°/2^d across.
func JoinDepth(radius float64) int {
	depth := 5
	for depth < 12 {
		trixel := (math.Pi / 2) / float64(uint(1)<<uint(depth+1))
		if trixel < 4*radius {
			break
		}
		depth++
	}
	return depth
}

// bucketItems hashes items into trixel buckets at depth with exact margin
// replication: every item lands in each bucket whose trixel lies within
// radius — so probing any single bucket sees every item within radius of
// any point inside that bucket's trixel. Items within one bucket are
// deduplicated.
func bucketItems(items []Item, depth int, radius float64) (map[htm.ID][]Item, error) {
	buckets := make(map[htm.ID][]Item)
	type bucketEdges struct{ n0, n1, n2 sphere.Vec3 }
	edges := make(map[htm.ID]bucketEdges)
	sinR := math.Sin(radius)
	for i := range items {
		it := items[i]
		home, err := htm.Lookup(it.Pos, depth)
		if err != nil {
			return nil, fmt.Errorf("hashm: item %d: %w", it.ID, err)
		}
		buckets[home] = append(buckets[home], it)
		eg, ok := edges[home]
		if !ok {
			tri, err := htm.Vertices(home)
			if err != nil {
				return nil, err
			}
			eg = bucketEdges{
				n0: tri.V[0].Cross(tri.V[1]).Normalize(),
				n1: tri.V[1].Cross(tri.V[2]).Normalize(),
				n2: tri.V[2].Cross(tri.V[0]).Normalize(),
			}
			edges[home] = eg
		}
		// Interior items (further than radius from every bucket edge)
		// cannot spill into a neighbor: skip the margin coverage.
		if it.Pos.Dot(eg.n0) >= sinR && it.Pos.Dot(eg.n1) >= sinR && it.Pos.Dot(eg.n2) >= sinR {
			continue
		}
		cov, err := region.Cover(region.Circle(it.Pos, radius), depth)
		if err != nil {
			return nil, err
		}
		seen := map[htm.ID]struct{}{home: {}}
		addTrixels := func(trixels []htm.ID) {
			for _, id := range trixels {
				lo, hi := id.RangeAtDepth(depth)
				if lo == htm.Invalid {
					continue
				}
				for b := lo; b <= hi; b++ {
					if _, dup := seen[b]; dup {
						continue
					}
					seen[b] = struct{}{}
					buckets[b] = append(buckets[b], it)
				}
			}
		}
		addTrixels(cov.Full)
		addTrixels(cov.Partial)
	}
	return buckets, nil
}

// JoinItems emits every (left, right) pair within radius radians, except
// identity pairs (same ObjID on both sides, which a same-table join would
// otherwise always produce at distance zero). The right side is bucketed
// with margin replication; left items probe only their home bucket, so each
// pair is discovered exactly once. Buckets are probed in parallel by
// workers goroutines (0 = GOMAXPROCS); pairs return sorted by (left row,
// right row), deterministic regardless of worker count.
func JoinItems(left, right []Item, radius float64, workers int) ([]IndexPair, error) {
	// The interior-item shortcut in bucketItems compares edge distances
	// against sin(radius), which is only conservative up to π/2; the
	// parser caps NEIGHBORS at 90°, this guards direct callers.
	if radius <= 0 || radius > math.Pi/2 {
		return nil, fmt.Errorf("hashm: join radius must be in (0, π/2] radians, got %g", radius)
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, nil
	}
	depth := JoinDepth(radius)
	buckets, err := bucketItems(right, depth, radius)
	if err != nil {
		return nil, err
	}

	// Group left probes by home bucket so each bucket's entries are walked
	// once per probe group, in parallel.
	probes := make(map[htm.ID][]Item)
	for i := range left {
		home, err := htm.Lookup(left[i].Pos, depth)
		if err != nil {
			return nil, fmt.Errorf("hashm: item %d: %w", left[i].ID, err)
		}
		probes[home] = append(probes[home], left[i])
	}
	ids := make([]htm.ID, 0, len(probes))
	for id := range probes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	work := make(chan htm.ID, len(ids))
	for _, id := range ids {
		work <- id
	}
	close(work)

	cosMax := math.Cos(radius)
	var mu sync.Mutex
	var out []IndexPair
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local []IndexPair
			for id := range work {
				cands := buckets[id]
				if len(cands) == 0 {
					continue
				}
				for _, l := range probes[id] {
					for _, r := range cands {
						if l.ID == r.ID {
							continue // identity pair
						}
						if sphere.CosDist(l.Pos, r.Pos) < cosMax {
							continue
						}
						local = append(local, IndexPair{
							Left:  l.Row,
							Right: r.Row,
							Dist:  sphere.Dist(l.Pos, r.Pos),
						})
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				out = append(out, local...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Left != out[j].Left {
			return out[i].Left < out[j].Left
		}
		return out[i].Right < out[j].Right
	})
	return out, nil
}
