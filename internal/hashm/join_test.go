package hashm

import (
	"math"
	"math/rand"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/sphere"
)

// randomItems scatters n items in a patch of sky so a small radius yields
// a healthy pair count.
func randomItems(n int, seed int64, idBase uint64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		ra := 180 + rng.Float64()*2
		dec := 20 + rng.Float64()*2
		items[i] = Item{
			ID:  catalog.ObjID(idBase + uint64(i)),
			Pos: sphere.FromRADec(ra, dec),
			Row: int32(i),
		}
	}
	return items
}

// TestJoinItemsMatchesBruteForce: the bucketed bipartite join must emit
// exactly the all-pairs set within radius, identity pairs excluded.
func TestJoinItemsMatchesBruteForce(t *testing.T) {
	radius := 2 * sphere.Arcmin
	left := randomItems(400, 1, 0)
	right := randomItems(500, 2, 10000)
	// A few identity collisions: give some right items left IDs at the
	// same position, which must never pair with themselves.
	for i := 0; i < 20; i++ {
		right[i].ID = left[i].ID
		right[i].Pos = left[i].Pos
	}

	got, err := JoinItems(left, right, radius, 4)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ l, r int32 }
	want := map[pair]float64{}
	cosMax := math.Cos(radius)
	for i := range left {
		for j := range right {
			if left[i].ID == right[j].ID {
				continue
			}
			if sphere.CosDist(left[i].Pos, right[j].Pos) >= cosMax {
				want[pair{left[i].Row, right[j].Row}] = sphere.Dist(left[i].Pos, right[j].Pos)
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate dataset: no pairs")
	}
	if len(got) != len(want) {
		t.Fatalf("join found %d pairs, brute force %d", len(got), len(want))
	}
	seen := map[pair]bool{}
	for _, p := range got {
		k := pair{p.Left, p.Right}
		d, ok := want[k]
		if !ok {
			t.Fatalf("unexpected pair %v", k)
		}
		if math.Abs(p.Dist-d) > 1e-12 {
			t.Errorf("pair %v dist %v, want %v", k, p.Dist, d)
		}
		if seen[k] {
			t.Fatalf("pair %v emitted twice", k)
		}
		seen[k] = true
	}
}

// TestJoinItemsDeterministic: worker count must not change the output.
func TestJoinItemsDeterministic(t *testing.T) {
	radius := 3 * sphere.Arcmin
	left := randomItems(300, 3, 0)
	right := randomItems(300, 4, 5000)
	a, err := JoinItems(left, right, radius, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoinItems(left, right, radius, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("1 worker %d pairs, 8 workers %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestJoinDepthScalesWithRadius: tighter radii pick deeper buckets, and the
// depth stays within HTM limits.
func TestJoinDepthScalesWithRadius(t *testing.T) {
	wide := JoinDepth(1 * sphere.Arcmin * 60) // 1 degree
	tight := JoinDepth(10 * sphere.Arcsec)
	if tight <= wide {
		t.Errorf("JoinDepth(10\") = %d not deeper than JoinDepth(1°) = %d", tight, wide)
	}
	for _, r := range []float64{1e-8, 1e-4, 0.01, 1} {
		d := JoinDepth(r)
		if d < 5 || d > 12 {
			t.Errorf("JoinDepth(%g) = %d out of [5, 12]", r, d)
		}
	}
}
