package hashm

import (
	"math"
	"math/rand"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/sphere"
)

// randomItems scatters n items in a patch of sky so a small radius yields
// a healthy pair count.
func randomItems(n int, seed int64, idBase uint64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		ra := 180 + rng.Float64()*2
		dec := 20 + rng.Float64()*2
		items[i] = Item{
			ID:  catalog.ObjID(idBase + uint64(i)),
			Pos: sphere.FromRADec(ra, dec),
			Row: int32(i),
		}
	}
	return items
}

// TestJoinItemsMatchesBruteForce: the bucketed bipartite join must emit
// exactly the all-pairs set within radius, identity pairs excluded.
func TestJoinItemsMatchesBruteForce(t *testing.T) {
	radius := 2 * sphere.Arcmin
	left := randomItems(400, 1, 0)
	right := randomItems(500, 2, 10000)
	// A few identity collisions: give some right items left IDs at the
	// same position, which must never pair with themselves.
	for i := 0; i < 20; i++ {
		right[i].ID = left[i].ID
		right[i].Pos = left[i].Pos
	}

	got, err := JoinItems(left, right, radius, 4)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ l, r int32 }
	want := map[pair]float64{}
	cosMax := math.Cos(radius)
	for i := range left {
		for j := range right {
			if left[i].ID == right[j].ID {
				continue
			}
			if sphere.CosDist(left[i].Pos, right[j].Pos) >= cosMax {
				want[pair{left[i].Row, right[j].Row}] = sphere.Dist(left[i].Pos, right[j].Pos)
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate dataset: no pairs")
	}
	if len(got) != len(want) {
		t.Fatalf("join found %d pairs, brute force %d", len(got), len(want))
	}
	seen := map[pair]bool{}
	for _, p := range got {
		k := pair{p.Left, p.Right}
		d, ok := want[k]
		if !ok {
			t.Fatalf("unexpected pair %v", k)
		}
		if math.Abs(p.Dist-d) > 1e-12 {
			t.Errorf("pair %v dist %v, want %v", k, p.Dist, d)
		}
		if seen[k] {
			t.Fatalf("pair %v emitted twice", k)
		}
		seen[k] = true
	}
}

// TestJoinItemsDeterministic: worker count must not change the output.
func TestJoinItemsDeterministic(t *testing.T) {
	radius := 3 * sphere.Arcmin
	left := randomItems(300, 3, 0)
	right := randomItems(300, 4, 5000)
	a, err := JoinItems(left, right, radius, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoinItems(left, right, radius, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("1 worker %d pairs, 8 workers %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPartitionDepthCoarsensWithRadius: small radii keep the container
// depth (partitions stay shard-aligned), huge radii coarsen until margin
// replication is a boundary effect again, and the result never leaves
// [0, containerDepth].
func TestPartitionDepthCoarsensWithRadius(t *testing.T) {
	if d := PartitionDepth(5, 0.5*sphere.Arcmin); d != 5 {
		t.Errorf("PartitionDepth(5, 0.5') = %d, want 5 (container-aligned)", d)
	}
	wide := PartitionDepth(5, 10*sphere.Deg)
	if wide >= 5 {
		t.Errorf("PartitionDepth(5, 10°) = %d, want coarser than 5", wide)
	}
	for _, r := range []float64{1e-8, 1e-4, 0.01, 1, math.Pi / 2} {
		d := PartitionDepth(5, r)
		if d < 0 || d > 5 {
			t.Errorf("PartitionDepth(5, %g) = %d out of [0, 5]", r, d)
		}
		if htm.TrixelAngle(d) < 4*r && d > 0 {
			t.Errorf("PartitionDepth(5, %g) = %d: trixel %g not ≥ 4r", r, d, htm.TrixelAngle(d))
		}
	}
}

// TestSpatialIndexMergeOffsets: per-shard builders index against local row
// slices; MergeOffset must rebase rows so a merged index probes exactly
// like one built in a single pass.
func TestSpatialIndexMergeOffsets(t *testing.T) {
	radius := 2 * sphere.Arcmin
	all := randomItems(600, 5, 0)
	one, err := NewSpatialIndex(radius, PartitionDepth(5, radius))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range all {
		if err := one.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	one.Finish(4)

	// Split into two shards with shard-local rows, then merge.
	merged, err := NewSpatialIndex(radius, PartitionDepth(5, radius))
	if err != nil {
		t.Fatal(err)
	}
	half := len(all) / 2
	for s, part := range [][]Item{all[:half], all[half:]} {
		sub, err := NewSpatialIndex(radius, PartitionDepth(5, radius))
		if err != nil {
			t.Fatal(err)
		}
		for i, it := range part {
			it.Row = int32(i) // shard-local row index
			if err := sub.Insert(it); err != nil {
				t.Fatal(err)
			}
		}
		merged.MergeOffset(sub, int32(s*half))
	}
	merged.Finish(4)

	probes := randomItems(200, 6, 100000)
	for _, p := range probes {
		collect := func(x *SpatialIndex) map[int32]bool {
			got := map[int32]bool{}
			ok, err := x.Probe(p, func(it Item, _ float64) bool {
				if got[it.Row] {
					t.Fatalf("row %d emitted twice", it.Row)
				}
				got[it.Row] = true
				return true
			})
			if err != nil || !ok {
				t.Fatalf("probe: ok=%v err=%v", ok, err)
			}
			return got
		}
		a, b := collect(one), collect(merged)
		if len(a) != len(b) {
			t.Fatalf("single-pass index found %d rows, merged %d", len(a), len(b))
		}
		for r := range a {
			if !b[r] {
				t.Fatalf("merged index missing row %d", r)
			}
		}
	}
}

// TestSpatialIndexPolesAndWraparound: the z-band probe must be exact at the
// celestial poles and across the RA 0/360 seam, where naive grid schemes
// break.
func TestSpatialIndexPolesAndWraparound(t *testing.T) {
	radius := 5 * sphere.Arcmin
	items := []Item{
		{ID: 1, Pos: sphere.FromRADec(10, 89.97), Row: 0},
		{ID: 2, Pos: sphere.FromRADec(190, 89.98), Row: 1},  // across the pole from item 1
		{ID: 3, Pos: sphere.FromRADec(359.99, 0.0), Row: 2}, // RA seam, east side
		{ID: 4, Pos: sphere.FromRADec(0.01, 0.0), Row: 3},   // RA seam, west side
		{ID: 5, Pos: sphere.FromRADec(359.99, -89.99), Row: 4},
		{ID: 6, Pos: sphere.FromRADec(120, 45), Row: 5}, // far from everything
	}
	left := make([]Item, len(items))
	copy(left, items)
	for i := range left {
		left[i].ID += 100 // distinct identities so no pair is identity-suppressed
	}
	got, err := JoinItems(left, items, radius, 2)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ l, r int32 }
	gotSet := map[pair]bool{}
	for _, p := range got {
		gotSet[pair{p.Left, p.Right}] = true
	}
	cosMax := math.Cos(radius)
	for i := range left {
		for j := range items {
			want := sphere.CosDist(left[i].Pos, items[j].Pos) >= cosMax
			if gotSet[pair{left[i].Row, items[j].Row}] != want {
				t.Errorf("pair (%d,%d): got %v, want %v", i, j, !want, want)
			}
		}
	}
	if !gotSet[pair{0, 1}] {
		t.Error("trans-polar pair (0,1) missed")
	}
	if !gotSet[pair{2, 3}] {
		t.Error("RA-wraparound pair (2,3) missed")
	}
}
