package hashm

import (
	"math"
	"sort"

	"sdss/internal/catalog"
	"sdss/internal/htm"
	"sdss/internal/skygen"
	"sdss/internal/sphere"
)

// unionFind is a classic disjoint-set over object indices.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Group is one friends-of-friends cluster.
type Group struct {
	Members []catalog.ObjID
	Center  sphere.Vec3 // normalized centroid
	Radius  float64     // max member distance from center, radians
}

// FriendsOfFriends finds groups by percolation: objects closer than the
// linking length (cfg.PairRadius) are "friends", and groups are the
// transitive closure — the standard cluster-finding algorithm the hash
// machine's "clustering by spectral type or by redshift-distance vector"
// workloads rest on. Groups smaller than minMembers are dropped.
func FriendsOfFriends(tags []catalog.Tag, cfg Config, minMembers int) ([]Group, error) {
	buckets, err := Hash(tags, cfg, nil)
	if err != nil {
		return nil, err
	}
	pairs, err := Pairs(buckets, cfg, nil)
	if err != nil {
		return nil, err
	}
	idx := make(map[catalog.ObjID]int, len(tags))
	for i := range tags {
		idx[tags[i].ObjID] = i
	}
	uf := newUnionFind(len(tags))
	for _, p := range pairs {
		uf.union(idx[p.A.ObjID], idx[p.B.ObjID])
	}
	members := make(map[int][]int)
	for i := range tags {
		root := uf.find(i)
		members[root] = append(members[root], i)
	}
	var groups []Group
	for _, m := range members {
		if len(m) < minMembers {
			continue
		}
		g := Group{Members: make([]catalog.ObjID, 0, len(m))}
		var sum sphere.Vec3
		for _, i := range m {
			g.Members = append(g.Members, tags[i].ObjID)
			sum = sum.Add(tags[i].Pos())
		}
		g.Center = sum.Normalize()
		for _, i := range m {
			if d := sphere.Dist(g.Center, tags[i].Pos()); d > g.Radius {
				g.Radius = d
			}
		}
		sort.Slice(g.Members, func(a, b int) bool { return g.Members[a] < g.Members[b] })
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return len(groups[i].Members) > len(groups[j].Members) })
	return groups, nil
}

// Match is one cross-identification: an external source matched to its
// nearest catalog object within the match radius.
type Match struct {
	RadioID uint64
	ObjID   catalog.ObjID
	Dist    float64 // radians
}

// CrossMatch identifies external (radio) sources with catalog objects:
// for each source, the nearest tag within radius. The tags are hashed with
// margin replication so the per-source search never leaves one bucket —
// the hash-join shape again, with the external catalog as probe side.
func CrossMatch(tags []catalog.Tag, radio []skygen.RadioSource, radius float64, cfg Config) ([]Match, error) {
	cfg.PairRadius = radius
	buckets, err := Hash(tags, cfg, nil)
	if err != nil {
		return nil, err
	}
	depth := cfg.bucketDepth()
	cosMax := math.Cos(radius)
	var out []Match
	for i := range radio {
		r := &radio[i]
		pos := r.Pos()
		home, err := htm.Lookup(pos, depth)
		if err != nil {
			continue
		}
		best := Match{RadioID: r.ID, Dist: math.Inf(1)}
		for _, e := range buckets[home] {
			c := sphere.CosDist(pos, sphere.Vec3{X: e.Tag.X, Y: e.Tag.Y, Z: e.Tag.Z})
			if c < cosMax {
				continue
			}
			if d := math.Acos(math.Min(1, c)); d < best.Dist {
				best.Dist = d
				best.ObjID = e.Tag.ObjID
			}
		}
		if !math.IsInf(best.Dist, 1) {
			out = append(out, best)
		}
	}
	return out, nil
}
