package fits

import (
	"fmt"

	"sdss/internal/catalog"
	"sdss/internal/htm"
)

// PhotoColumns returns the binary-table schema for photometric objects —
// the on-the-wire form the Operational Archive exports calibrated chunks in.
func PhotoColumns() []Column {
	return []Column{
		{Name: "OBJID", Type: TypeInt64, Repeat: 1},
		{Name: "HTMID", Type: TypeInt64, Repeat: 1},
		{Name: "RUN", Type: TypeInt16, Repeat: 1},
		{Name: "CAMCOL", Type: TypeByte, Repeat: 1},
		{Name: "FIELD", Type: TypeInt16, Repeat: 1},
		{Name: "MJD", Type: TypeFloat64, Repeat: 1, Unit: "d"},
		{Name: "RA", Type: TypeFloat64, Repeat: 1, Unit: "deg"},
		{Name: "DEC", Type: TypeFloat64, Repeat: 1, Unit: "deg"},
		{Name: "CX", Type: TypeFloat64, Repeat: 1},
		{Name: "CY", Type: TypeFloat64, Repeat: 1},
		{Name: "CZ", Type: TypeFloat64, Repeat: 1},
		{Name: "MAG", Type: TypeFloat32, Repeat: catalog.NumBands, Unit: "mag"},
		{Name: "MAGERR", Type: TypeFloat32, Repeat: catalog.NumBands, Unit: "mag"},
		{Name: "EXTINCTION", Type: TypeFloat32, Repeat: catalog.NumBands, Unit: "mag"},
		{Name: "PETRORAD", Type: TypeFloat32, Repeat: 1, Unit: "arcsec"},
		{Name: "PETROR50", Type: TypeFloat32, Repeat: 1, Unit: "arcsec"},
		{Name: "SURFBRIGHT", Type: TypeFloat32, Repeat: 1, Unit: "mag/arcsec2"},
		{Name: "SKYBRIGHT", Type: TypeFloat32, Repeat: 1},
		{Name: "AIRMASS", Type: TypeFloat32, Repeat: 1},
		{Name: "ROWC", Type: TypeFloat32, Repeat: 1, Unit: "pix"},
		{Name: "COLC", Type: TypeFloat32, Repeat: 1, Unit: "pix"},
		{Name: "PSFWIDTH", Type: TypeFloat32, Repeat: 1, Unit: "arcsec"},
		{Name: "MURA", Type: TypeFloat32, Repeat: 1, Unit: "mas/yr"},
		{Name: "MUDEC", Type: TypeFloat32, Repeat: 1, Unit: "mas/yr"},
		{Name: "CLASS", Type: TypeByte, Repeat: 1},
		{Name: "FLAGS", Type: TypeInt64, Repeat: 1},
		{Name: "PROF", Type: TypeFloat32, Repeat: catalog.NumBands * catalog.NumProfileBins},
		{Name: "PROFERR", Type: TypeFloat32, Repeat: catalog.NumBands * catalog.NumProfileBins},
	}
}

// PhotoRow converts a PhotoObj to a table row matching PhotoColumns.
func PhotoRow(p *catalog.PhotoObj) []any {
	prof := make([]float32, 0, catalog.NumBands*catalog.NumProfileBins)
	profErr := make([]float32, 0, catalog.NumBands*catalog.NumProfileBins)
	for b := 0; b < catalog.NumBands; b++ {
		prof = append(prof, p.Prof[b][:]...)
		profErr = append(profErr, p.ProfErr[b][:]...)
	}
	return []any{
		int64(p.ObjID), int64(p.HTMID),
		int16(p.Run), p.Camcol, int16(p.Field), p.MJD,
		p.RA, p.Dec, p.X, p.Y, p.Z,
		p.Mag[:], p.MagErr[:], p.Extinction[:],
		p.PetroRad, p.PetroR50, p.SurfBright, p.SkyBright, p.Airmass,
		p.RowC, p.ColC, p.PSFWidth, p.MuRA, p.MuDec,
		byte(p.Class), int64(p.Flags),
		prof, profErr,
	}
}

// RowPhoto converts a table row (schema PhotoColumns) back to a PhotoObj.
func RowPhoto(row []any) (catalog.PhotoObj, error) {
	var p catalog.PhotoObj
	if len(row) != 28 {
		return p, fmt.Errorf("fits: photo row has %d cells, want 28", len(row))
	}
	var ok bool
	fail := func(i int, what string) error {
		return fmt.Errorf("fits: photo row cell %d (%s): unexpected type %T", i, what, row[i])
	}
	var v int64
	if v, ok = row[0].(int64); !ok {
		return p, fail(0, "OBJID")
	}
	p.ObjID = catalog.ObjID(v)
	if v, ok = row[1].(int64); !ok {
		return p, fail(1, "HTMID")
	}
	p.HTMID = htm.ID(v)
	run, ok := row[2].(int16)
	if !ok {
		return p, fail(2, "RUN")
	}
	p.Run = uint16(run)
	if p.Camcol, ok = row[3].(byte); !ok {
		return p, fail(3, "CAMCOL")
	}
	field, ok := row[4].(int16)
	if !ok {
		return p, fail(4, "FIELD")
	}
	p.Field = uint16(field)
	if p.MJD, ok = row[5].(float64); !ok {
		return p, fail(5, "MJD")
	}
	if p.RA, ok = row[6].(float64); !ok {
		return p, fail(6, "RA")
	}
	if p.Dec, ok = row[7].(float64); !ok {
		return p, fail(7, "DEC")
	}
	if p.X, ok = row[8].(float64); !ok {
		return p, fail(8, "CX")
	}
	if p.Y, ok = row[9].(float64); !ok {
		return p, fail(9, "CY")
	}
	if p.Z, ok = row[10].(float64); !ok {
		return p, fail(10, "CZ")
	}
	copyBands := func(i int, dst *[catalog.NumBands]float32, what string) error {
		src, ok := row[i].([]float32)
		if !ok || len(src) != catalog.NumBands {
			return fail(i, what)
		}
		copy(dst[:], src)
		return nil
	}
	if err := copyBands(11, &p.Mag, "MAG"); err != nil {
		return p, err
	}
	if err := copyBands(12, &p.MagErr, "MAGERR"); err != nil {
		return p, err
	}
	if err := copyBands(13, &p.Extinction, "EXTINCTION"); err != nil {
		return p, err
	}
	f32s := []*float32{&p.PetroRad, &p.PetroR50, &p.SurfBright, &p.SkyBright,
		&p.Airmass, &p.RowC, &p.ColC, &p.PSFWidth, &p.MuRA, &p.MuDec}
	for i, dst := range f32s {
		v, ok := row[14+i].(float32)
		if !ok {
			return p, fail(14+i, "float field")
		}
		*dst = v
	}
	cls, ok := row[24].(byte)
	if !ok {
		return p, fail(24, "CLASS")
	}
	p.Class = catalog.Class(cls)
	flags, ok := row[25].(int64)
	if !ok {
		return p, fail(25, "FLAGS")
	}
	p.Flags = uint64(flags)
	copyProfile := func(i int, dst *[catalog.NumBands][catalog.NumProfileBins]float32, what string) error {
		src, ok := row[i].([]float32)
		if !ok || len(src) != catalog.NumBands*catalog.NumProfileBins {
			return fail(i, what)
		}
		for b := 0; b < catalog.NumBands; b++ {
			copy(dst[b][:], src[b*catalog.NumProfileBins:(b+1)*catalog.NumProfileBins])
		}
		return nil
	}
	if err := copyProfile(26, &p.Prof, "PROF"); err != nil {
		return p, err
	}
	if err := copyProfile(27, &p.ProfErr, "PROFERR"); err != nil {
		return p, err
	}
	return p, nil
}
