package fits

import (
	"fmt"
	"io"
)

// StreamWriter emits a table as a sequence of self-contained FITS packets,
// each carrying up to PacketRows rows. This is the paper's workaround for
// FITS not supporting streaming: "data could be blocked into separate FITS
// packets ... we are currently implementing both an ASCII and a binary FITS
// output stream, using such a blocked approach."
//
// Each packet is a complete, valid FITS file (primary HDU + BINTABLE), so a
// consumer can begin processing as soon as the first packet arrives and any
// standard FITS reader can decode an individual packet.
type StreamWriter struct {
	w          io.Writer
	cols       []Column
	name       string
	packetRows int
	pending    [][]any
	packets    int
	rows       int64
}

// DefaultPacketRows is the packet granularity when none is specified.
const DefaultPacketRows = 1024

// NewStreamWriter creates a blocked FITS stream over w.
func NewStreamWriter(w io.Writer, name string, cols []Column, packetRows int) *StreamWriter {
	if packetRows <= 0 {
		packetRows = DefaultPacketRows
	}
	return &StreamWriter{w: w, cols: cols, name: name, packetRows: packetRows}
}

// WriteRow buffers one row, flushing a packet when full.
func (s *StreamWriter) WriteRow(row []any) error {
	if len(row) != len(s.cols) {
		return fmt.Errorf("fits: stream row has %d cells, want %d", len(row), len(s.cols))
	}
	s.pending = append(s.pending, row)
	s.rows++
	if len(s.pending) >= s.packetRows {
		return s.flush()
	}
	return nil
}

// Flush emits any buffered rows as a final (possibly short) packet.
func (s *StreamWriter) Flush() error {
	if len(s.pending) == 0 {
		return nil
	}
	return s.flush()
}

func (s *StreamWriter) flush() error {
	t := &Table{Name: s.name, Cols: s.cols, Rows: s.pending}
	if err := t.Write(s.w); err != nil {
		return err
	}
	s.pending = nil
	s.packets++
	return nil
}

// Packets returns the number of packets emitted so far.
func (s *StreamWriter) Packets() int { return s.packets }

// Rows returns the number of rows written so far (including buffered).
func (s *StreamWriter) Rows() int64 { return s.rows }

// StreamReader consumes a blocked FITS stream packet by packet.
type StreamReader struct {
	r io.Reader
}

// NewStreamReader wraps a reader positioned at the first packet.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: r}
}

// Next returns the next packet's table, or io.EOF at end of stream.
func (s *StreamReader) Next() (*Table, error) {
	t, err := ReadTable(s.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ReadAll drains the stream and concatenates all packets into one table.
func (s *StreamReader) ReadAll() (*Table, error) {
	var out *Table
	for {
		t, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = t
			continue
		}
		if len(t.Cols) != len(out.Cols) {
			return nil, fmt.Errorf("fits: stream packet schema changed: %d cols vs %d", len(t.Cols), len(out.Cols))
		}
		out.Rows = append(out.Rows, t.Rows...)
	}
	if out == nil {
		return nil, io.EOF
	}
	return out, nil
}
