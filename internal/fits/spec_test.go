package fits

import (
	"bytes"
	"math"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/skygen"
)

// specChunk generates a chunk guaranteed to carry spectra.
func specChunk(t *testing.T, seed int64, n int) *skygen.Chunk {
	t.Helper()
	ch, err := skygen.GenerateChunk(skygen.Default(seed, n), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Spec) == 0 {
		t.Fatal("chunk has no spectra")
	}
	return ch
}

func TestSpecObjFITSRoundTrip(t *testing.T) {
	ch := specChunk(t, 6, 800)
	tab := &Table{Name: "SPECOBJ", Cols: SpecColumns()}
	for i := range ch.Spec {
		tab.Rows = append(tab.Rows, SpecRow(&ch.Spec[i]))
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "SPECOBJ" {
		t.Errorf("EXTNAME = %q, want SPECOBJ", got.Name)
	}
	if len(got.Rows) != len(ch.Spec) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(ch.Spec))
	}
	for i, row := range got.Rows {
		s, err := RowSpec(row)
		if err != nil {
			t.Fatal(err)
		}
		if s != ch.Spec[i] {
			t.Fatalf("spectrum %d: FITS round trip mismatch\ngot  %+v\nwant %+v", i, s, ch.Spec[i])
		}
	}
}

// TestSpecColumnsCoverSpecLayout cross-checks the FITS codec against the
// store codec the way the photo codecs are: every attribute the query
// engine can address (catalog.SpecLayout) must survive the FITS round trip
// bit-identically, read back through the byte-offset layout itself.
func TestSpecColumnsCoverSpecLayout(t *testing.T) {
	ch := specChunk(t, 7, 600)
	for i := range ch.Spec {
		want := &ch.Spec[i]
		got, err := RowSpec(SpecRow(want))
		if err != nil {
			t.Fatal(err)
		}
		wantRec := want.AppendTo(nil)
		gotRec := got.AppendTo(nil)
		for _, f := range catalog.SpecLayout {
			w, g := f.Read(wantRec), f.Read(gotRec)
			if w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
				t.Fatalf("spectrum %d: SpecLayout attribute %s lost in FITS codec: %v -> %v",
					i, f.Name, w, g)
			}
		}
	}
}

func TestRowSpecErrors(t *testing.T) {
	if _, err := RowSpec([]any{int64(1)}); err == nil {
		t.Error("short row accepted")
	}
	var s catalog.SpecObj
	row := SpecRow(&s)
	row[0] = "bad"
	if _, err := RowSpec(row); err == nil {
		t.Error("mistyped OBJID accepted")
	}
	row = SpecRow(&s)
	row[8] = []float32{1}
	if _, err := RowSpec(row); err == nil {
		t.Error("short LINEWAVE array accepted")
	}
	row = SpecRow(&s)
	row[10] = []int16{1, 2, 3}
	if _, err := RowSpec(row); err == nil {
		t.Error("short LINEID array accepted")
	}
}
