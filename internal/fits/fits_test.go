package fits

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sdss/internal/catalog"
	"sdss/internal/skygen"
)

func sampleTable() *Table {
	return &Table{
		Name: "TEST",
		Cols: []Column{
			{Name: "ID", Type: TypeInt64, Repeat: 1},
			{Name: "RA", Type: TypeFloat64, Repeat: 1, Unit: "deg"},
			{Name: "MAG", Type: TypeFloat32, Repeat: 5, Unit: "mag"},
			{Name: "NAME", Type: TypeChar, Repeat: 8},
			{Name: "N", Type: TypeInt32, Repeat: 1},
			{Name: "SHORT", Type: TypeInt16, Repeat: 1},
			{Name: "FLAG", Type: TypeByte, Repeat: 1},
		},
		Rows: [][]any{
			{int64(1), 187.25, []float32{19.1, 18.2, 17.8, 17.5, 17.3}, "SDSS0001", int32(-7), int16(42), byte(3)},
			{int64(2), 0.001, []float32{21, 20, 19, 18, 17}, "SDSS0002", int32(1 << 30), int16(-3), byte(0)},
		},
	}
}

func TestCardFormatParseRoundTrip(t *testing.T) {
	cases := []Card{
		{Keyword: "SIMPLE", Value: true, Comment: "conforms"},
		{Keyword: "BITPIX", Value: int64(8)},
		{Keyword: "NAXIS1", Value: int64(778), Comment: "bytes"},
		{Keyword: "EXTNAME", Value: "PHOTOOBJ", Comment: "name"},
		{Keyword: "SCALE", Value: 0.0001},
		{Keyword: "QUOTED", Value: "it's", Comment: "escaped quote"},
		{Keyword: "FALSEKW", Value: false},
	}
	for _, c := range cases {
		raw := c.format()
		if len(raw) != CardSize {
			t.Fatalf("card %q formatted to %d chars", c.Keyword, len(raw))
		}
		got := parseCard(raw)
		if got.Keyword != c.Keyword {
			t.Errorf("keyword %q -> %q", c.Keyword, got.Keyword)
		}
		if !reflect.DeepEqual(got.Value, c.Value) {
			t.Errorf("%s: value %v (%T) -> %v (%T)", c.Keyword, c.Value, c.Value, got.Value, got.Value)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	want := sampleTable()
	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%BlockSize != 0 {
		t.Errorf("file size %d not a multiple of block size", buf.Len())
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name {
		t.Errorf("name %q, want %q", got.Name, want.Name)
	}
	if !reflect.DeepEqual(got.Cols, want.Cols) {
		t.Fatalf("columns differ:\n%v\n%v", got.Cols, want.Cols)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("rows differ:\n%v\n%v", got.Rows, want.Rows)
	}
}

func TestHeaderStructure(t *testing.T) {
	// The emitted bytes must start with the required SIMPLE card and
	// contain only full 2880-byte blocks of printable ASCII in headers.
	var buf bytes.Buffer
	if err := sampleTable().Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !strings.HasPrefix(string(raw[:30]), "SIMPLE  =                    T") {
		t.Errorf("file does not start with SIMPLE card: %q", raw[:30])
	}
	// XTENSION card must begin the second HDU (block-aligned).
	idx := bytes.Index(raw, []byte("XTENSION"))
	if idx%BlockSize != 0 {
		t.Errorf("XTENSION at offset %d, not block-aligned", idx)
	}
}

func TestTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The extension header of sampleTable fits in one block, so its data
	// begins one block after the XTENSION card; cutting 50 bytes into the
	// data block truncates mid-row. (Cutting inside trailing zero padding
	// would be tolerated, by design.)
	dataStart := bytes.Index(raw, []byte("XTENSION")) + BlockSize
	for _, cut := range []int{10, BlockSize - 1, BlockSize + 5, dataStart + 50} {
		_, err := ReadTable(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Errorf("reading file truncated at %d succeeded", cut)
		}
	}
	// Garbage input.
	if _, err := ReadTable(strings.NewReader(strings.Repeat("x", 2*BlockSize))); err == nil {
		t.Error("garbage accepted as FITS")
	}
	// Empty input gives EOF.
	if _, err := ReadTable(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty input: %v, want io.EOF", err)
	}
}

func TestBadRows(t *testing.T) {
	tab := sampleTable()
	tab.Rows = append(tab.Rows, []any{int64(3)}) // wrong arity
	if err := tab.Write(io.Discard); err == nil {
		t.Error("short row accepted")
	}
	tab = sampleTable()
	tab.Rows[0][1] = "not a float"
	if err := tab.Write(io.Discard); err == nil {
		t.Error("mistyped cell accepted")
	}
	tab = sampleTable()
	tab.Rows[0][2] = []float32{1, 2} // wrong repeat
	if err := tab.Write(io.Discard); err == nil {
		t.Error("wrong-length array cell accepted")
	}
}

func TestStreamBlockedPackets(t *testing.T) {
	cols := []Column{
		{Name: "ID", Type: TypeInt64, Repeat: 1},
		{Name: "V", Type: TypeFloat64, Repeat: 1},
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, "STREAM", cols, 10)
	const n = 35
	for i := 0; i < n; i++ {
		if err := sw.WriteRow([]any{int64(i), float64(i) * 1.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Packets() != 4 { // 10+10+10+5
		t.Errorf("packets = %d, want 4", sw.Packets())
	}
	if sw.Rows() != n {
		t.Errorf("rows = %d, want %d", sw.Rows(), n)
	}

	// Packet-by-packet read: the first packet must be decodable without
	// the rest of the stream (the ASAP property the blocking gives us).
	firstLen := func() int {
		var one bytes.Buffer
		swo := NewStreamWriter(&one, "STREAM", cols, 10)
		for i := 0; i < 10; i++ {
			swo.WriteRow([]any{int64(i), float64(i) * 1.5})
		}
		swo.Flush()
		return one.Len()
	}()
	head, err := ReadTable(bytes.NewReader(buf.Bytes()[:firstLen]))
	if err != nil {
		t.Fatalf("first packet not self-contained: %v", err)
	}
	if len(head.Rows) != 10 {
		t.Errorf("first packet rows = %d, want 10", len(head.Rows))
	}

	// Full drain.
	all, err := NewStreamReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != n {
		t.Fatalf("ReadAll rows = %d, want %d", len(all.Rows), n)
	}
	for i, row := range all.Rows {
		if row[0].(int64) != int64(i) {
			t.Fatalf("row %d out of order: %v", i, row)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, "S", []Column{{Name: "X", Type: TypeInt32, Repeat: 1}}, 0)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("flush of empty stream wrote data")
	}
	if _, err := NewStreamReader(&buf).ReadAll(); err != io.EOF {
		t.Errorf("empty stream ReadAll: %v, want io.EOF", err)
	}
}

func TestPhotoObjFITSRoundTrip(t *testing.T) {
	ch, err := skygen.GenerateChunk(skygen.Default(5, 500), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Photo) == 0 {
		t.Fatal("empty chunk")
	}
	tab := &Table{Name: "PHOTOOBJ", Cols: PhotoColumns()}
	for i := range ch.Photo {
		tab.Rows = append(tab.Rows, PhotoRow(&ch.Photo[i]))
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(ch.Photo) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(ch.Photo))
	}
	for i, row := range got.Rows {
		p, err := RowPhoto(row)
		if err != nil {
			t.Fatal(err)
		}
		if p != ch.Photo[i] {
			t.Fatalf("object %d: FITS round trip mismatch", i)
		}
	}
}

func TestRowPhotoErrors(t *testing.T) {
	if _, err := RowPhoto([]any{int64(1)}); err == nil {
		t.Error("short row accepted")
	}
	var p catalog.PhotoObj
	row := PhotoRow(&p)
	row[0] = "bad"
	if _, err := RowPhoto(row); err == nil {
		t.Error("mistyped OBJID accepted")
	}
	row = PhotoRow(&p)
	row[11] = []float32{1}
	if _, err := RowPhoto(row); err == nil {
		t.Error("short MAG array accepted")
	}
}

func TestWriteASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# EXTNAME = TEST", "SDSS0001", "187.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	dataLines := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			dataLines++
		}
	}
	if dataLines != 2 {
		t.Errorf("ASCII data lines = %d, want 2", dataLines)
	}
}

func BenchmarkBinTableWrite(b *testing.B) {
	ch, err := skygen.GenerateChunk(skygen.Default(5, 2000), 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	tab := &Table{Name: "PHOTOOBJ", Cols: PhotoColumns()}
	for i := range ch.Photo {
		tab.Rows = append(tab.Rows, PhotoRow(&ch.Photo[i]))
	}
	rowBytes := int64(tab.RowWidth() * len(tab.Rows))
	b.SetBytes(rowBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink any

func BenchmarkBinTableRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := &Table{Name: "T", Cols: []Column{
		{Name: "ID", Type: TypeInt64, Repeat: 1},
		{Name: "V", Type: TypeFloat64, Repeat: 1},
	}}
	for i := 0; i < 5000; i++ {
		tab.Rows = append(tab.Rows, []any{int64(i), rng.Float64()})
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ReadTable(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		benchSink = got
	}
}
