package fits

import (
	"fmt"

	"sdss/internal/catalog"
	"sdss/internal/htm"
)

// SpecColumns returns the binary-table schema for spectroscopic objects —
// the second HDU stream of a chunk file, carrying the redshift measurement
// and identified lines for every targeted photometric object.
func SpecColumns() []Column {
	return []Column{
		{Name: "OBJID", Type: TypeInt64, Repeat: 1},
		{Name: "HTMID", Type: TypeInt64, Repeat: 1},
		{Name: "Z", Type: TypeFloat32, Repeat: 1},
		{Name: "ZERR", Type: TypeFloat32, Repeat: 1},
		{Name: "CLASS", Type: TypeByte, Repeat: 1},
		{Name: "FIBERID", Type: TypeInt16, Repeat: 1},
		{Name: "PLATE", Type: TypeInt16, Repeat: 1},
		{Name: "SN", Type: TypeFloat32, Repeat: 1},
		{Name: "LINEWAVE", Type: TypeFloat32, Repeat: catalog.NumLines, Unit: "Angstrom"},
		{Name: "LINEEW", Type: TypeFloat32, Repeat: catalog.NumLines, Unit: "Angstrom"},
		{Name: "LINEID", Type: TypeInt16, Repeat: catalog.NumLines},
	}
}

// SpecRow converts a SpecObj to a table row matching SpecColumns.
func SpecRow(s *catalog.SpecObj) []any {
	wave := make([]float32, catalog.NumLines)
	ew := make([]float32, catalog.NumLines)
	id := make([]int16, catalog.NumLines)
	for i, l := range s.Lines {
		wave[i] = l.Wavelength
		ew[i] = l.EquivWidth
		id[i] = int16(l.LineID)
	}
	return []any{
		int64(s.ObjID), int64(s.HTMID),
		s.Redshift, s.RedshiftErr,
		byte(s.Class), int16(s.FiberID), int16(s.Plate), s.SN,
		wave, ew, id,
	}
}

// RowSpec converts a table row (schema SpecColumns) back to a SpecObj.
func RowSpec(row []any) (catalog.SpecObj, error) {
	var s catalog.SpecObj
	if len(row) != 11 {
		return s, fmt.Errorf("fits: spec row has %d cells, want 11", len(row))
	}
	fail := func(i int, what string) error {
		return fmt.Errorf("fits: spec row cell %d (%s): unexpected type %T", i, what, row[i])
	}
	v, ok := row[0].(int64)
	if !ok {
		return s, fail(0, "OBJID")
	}
	s.ObjID = catalog.ObjID(v)
	if v, ok = row[1].(int64); !ok {
		return s, fail(1, "HTMID")
	}
	s.HTMID = htm.ID(v)
	if s.Redshift, ok = row[2].(float32); !ok {
		return s, fail(2, "Z")
	}
	if s.RedshiftErr, ok = row[3].(float32); !ok {
		return s, fail(3, "ZERR")
	}
	cls, ok := row[4].(byte)
	if !ok {
		return s, fail(4, "CLASS")
	}
	s.Class = catalog.Class(cls)
	fiber, ok := row[5].(int16)
	if !ok {
		return s, fail(5, "FIBERID")
	}
	s.FiberID = uint16(fiber)
	plate, ok := row[6].(int16)
	if !ok {
		return s, fail(6, "PLATE")
	}
	s.Plate = uint16(plate)
	if s.SN, ok = row[7].(float32); !ok {
		return s, fail(7, "SN")
	}
	wave, ok := row[8].([]float32)
	if !ok || len(wave) != catalog.NumLines {
		return s, fail(8, "LINEWAVE")
	}
	ew, ok := row[9].([]float32)
	if !ok || len(ew) != catalog.NumLines {
		return s, fail(9, "LINEEW")
	}
	id, ok := row[10].([]int16)
	if !ok || len(id) != catalog.NumLines {
		return s, fail(10, "LINEID")
	}
	for i := range s.Lines {
		s.Lines[i] = catalog.SpectralLine{
			Wavelength: wave[i],
			EquivWidth: ew[i],
			LineID:     uint16(id[i]),
		}
	}
	return s, nil
}
