package fits

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteASCII renders the table as a FITS-style ASCII table: a commented
// header naming the columns followed by whitespace-aligned rows. This is
// the human-readable interchange form ("an ASCII ... output stream"); the
// binary form is authoritative.
func (t *Table) WriteASCII(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# EXTNAME = %s\n", t.Name)
	fmt.Fprintf(bw, "# TFIELDS = %d\n", len(t.Cols))
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
		fmt.Fprintf(bw, "# TTYPE%d = %s (%s, repeat %d, unit %q)\n", i+1, c.Name, string(c.Type), c.Repeat, c.Unit)
	}
	fmt.Fprintf(bw, "# %s\n", strings.Join(names, "\t"))
	for _, row := range t.Rows {
		for ci, cell := range row {
			if ci > 0 {
				bw.WriteByte('\t')
			}
			writeASCIICell(bw, cell)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func writeASCIICell(w io.Writer, cell any) {
	switch v := cell.(type) {
	case float64:
		fmt.Fprint(w, strconv.FormatFloat(v, 'g', 17, 64))
	case float32:
		fmt.Fprint(w, strconv.FormatFloat(float64(v), 'g', 9, 32))
	case string:
		fmt.Fprintf(w, "%q", v)
	case []float32:
		for i, e := range v {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, strconv.FormatFloat(float64(e), 'g', 9, 32))
		}
	case []float64:
		for i, e := range v {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, strconv.FormatFloat(e, 'g', 17, 64))
		}
	default:
		fmt.Fprintf(w, "%v", v)
	}
}
