// Package fits implements the subset of the Flexible Image Transport System
// [Wells81] the archive pipelines exchange data in: header cards, binary
// table (BINTABLE) extensions, ASCII tables, and — because standard FITS
// files do not support streaming — a blocked stream format in which data is
// carried as a sequence of self-contained FITS packets, exactly the
// "blocked approach" the paper says the SDSS is implementing.
//
// Files are sequences of 2880-byte blocks. A header is a sequence of
// 80-character cards; binary table data is big-endian. Only the features the
// archive needs are implemented, but what is implemented follows the
// standard closely enough that real FITS tools can read the output.
package fits

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BlockSize is the FITS logical record length.
const BlockSize = 2880

// CardSize is the length of one header card.
const CardSize = 80

// Card is one 80-character header record: a keyword, an optional value, and
// an optional comment.
type Card struct {
	Keyword string
	Value   any // string, bool, int64, float64, or nil
	Comment string
}

// format renders the card in standard FITS layout.
func (c Card) format() string {
	var b strings.Builder
	kw := c.Keyword
	if len(kw) > 8 {
		kw = kw[:8]
	}
	fmt.Fprintf(&b, "%-8s", kw)
	if c.Value != nil {
		b.WriteString("= ")
		switch v := c.Value.(type) {
		case string:
			// Strings are quoted, left-justified, min 8 chars inside quotes.
			q := "'" + strings.ReplaceAll(v, "'", "''") + "'"
			for len(q) < 10 {
				q = q[:len(q)-1] + " '"
			}
			fmt.Fprintf(&b, "%-20s", q)
		case bool:
			t := "F"
			if v {
				t = "T"
			}
			fmt.Fprintf(&b, "%20s", t)
		case int:
			fmt.Fprintf(&b, "%20d", v)
		case int64:
			fmt.Fprintf(&b, "%20d", v)
		case float64:
			fmt.Fprintf(&b, "%20s", strconv.FormatFloat(v, 'G', -1, 64))
		default:
			fmt.Fprintf(&b, "%20v", v)
		}
		if c.Comment != "" {
			b.WriteString(" / ")
			b.WriteString(c.Comment)
		}
	} else if c.Comment != "" {
		b.WriteString(" ")
		b.WriteString(c.Comment)
	}
	s := b.String()
	if len(s) > CardSize {
		s = s[:CardSize]
	}
	return s + strings.Repeat(" ", CardSize-len(s))
}

// parseCard parses one 80-character card.
func parseCard(raw string) Card {
	c := Card{Keyword: strings.TrimRight(raw[:8], " ")}
	if len(raw) < 10 || raw[8:10] != "= " {
		c.Comment = strings.TrimSpace(raw[8:])
		return c
	}
	rest := raw[10:]
	// String value?
	trimmed := strings.TrimLeft(rest, " ")
	if strings.HasPrefix(trimmed, "'") {
		end := 1
		var sb strings.Builder
		for end < len(trimmed) {
			if trimmed[end] == '\'' {
				if end+1 < len(trimmed) && trimmed[end+1] == '\'' {
					sb.WriteByte('\'')
					end += 2
					continue
				}
				break
			}
			sb.WriteByte(trimmed[end])
			end++
		}
		c.Value = strings.TrimRight(sb.String(), " ")
		if i := strings.Index(trimmed[end:], "/"); i >= 0 {
			c.Comment = strings.TrimSpace(trimmed[end+i+1:])
		}
		return c
	}
	// Numeric / logical, with optional comment after '/'.
	valPart := rest
	if i := strings.Index(rest, "/"); i >= 0 {
		valPart = rest[:i]
		c.Comment = strings.TrimSpace(rest[i+1:])
	}
	valPart = strings.TrimSpace(valPart)
	switch valPart {
	case "T":
		c.Value = true
	case "F":
		c.Value = false
	case "":
		c.Value = nil
	default:
		if iv, err := strconv.ParseInt(valPart, 10, 64); err == nil {
			c.Value = iv
		} else if fv, err := strconv.ParseFloat(valPart, 64); err == nil {
			c.Value = fv
		} else {
			c.Value = valPart
		}
	}
	return c
}

// Header is an ordered list of cards.
type Header struct {
	Cards []Card
}

// Add appends a card.
func (h *Header) Add(keyword string, value any, comment string) {
	h.Cards = append(h.Cards, Card{Keyword: keyword, Value: value, Comment: comment})
}

// Get returns the value of the first card with the given keyword.
func (h *Header) Get(keyword string) (any, bool) {
	for _, c := range h.Cards {
		if c.Keyword == keyword {
			return c.Value, true
		}
	}
	return nil, false
}

// GetInt returns an integer-valued keyword.
func (h *Header) GetInt(keyword string) (int64, error) {
	v, ok := h.Get(keyword)
	if !ok {
		return 0, fmt.Errorf("fits: keyword %s missing", keyword)
	}
	switch n := v.(type) {
	case int64:
		return n, nil
	case float64:
		return int64(n), nil
	default:
		return 0, fmt.Errorf("fits: keyword %s is %T, not integer", keyword, v)
	}
}

// GetString returns a string-valued keyword.
func (h *Header) GetString(keyword string) (string, error) {
	v, ok := h.Get(keyword)
	if !ok {
		return "", fmt.Errorf("fits: keyword %s missing", keyword)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("fits: keyword %s is %T, not string", keyword, v)
	}
	return s, nil
}

// writeTo emits the header cards plus END, padded to a block boundary.
func (h *Header) writeTo(w io.Writer) error {
	var b strings.Builder
	for _, c := range h.Cards {
		b.WriteString(c.format())
	}
	b.WriteString(Card{Keyword: "END"}.format())
	for b.Len()%BlockSize != 0 {
		b.WriteString(strings.Repeat(" ", CardSize))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// readHeader reads blocks until the END card.
func readHeader(r io.Reader) (*Header, error) {
	h := &Header{}
	block := make([]byte, BlockSize)
	for {
		if _, err := io.ReadFull(r, block); err != nil {
			if err == io.EOF && len(h.Cards) == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("fits: truncated header: %w", err)
		}
		for off := 0; off < BlockSize; off += CardSize {
			raw := string(block[off : off+CardSize])
			kw := strings.TrimRight(raw[:8], " ")
			if kw == "END" {
				return h, nil
			}
			if kw == "" && strings.TrimSpace(raw) == "" {
				continue
			}
			h.Cards = append(h.Cards, parseCard(raw))
		}
	}
}

// padBlock writes zero padding to round n bytes up to a block boundary.
// FITS pads data with zeros (headers with spaces).
func padBlock(w io.Writer, n int64) error {
	rem := int(n % BlockSize)
	if rem == 0 {
		return nil
	}
	_, err := w.Write(make([]byte, BlockSize-rem))
	return err
}

// skipPad consumes data padding after n bytes of content.
func skipPad(r io.Reader, n int64) error {
	rem := int(n % BlockSize)
	if rem == 0 {
		return nil
	}
	_, err := io.CopyN(io.Discard, r, int64(BlockSize-rem))
	return err
}
