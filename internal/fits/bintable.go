package fits

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ColType is a FITS binary-table column data type (the TFORM letter).
type ColType byte

// The supported BINTABLE column types.
const (
	TypeByte    ColType = 'B' // unsigned 8-bit
	TypeInt16   ColType = 'I' // big-endian int16
	TypeInt32   ColType = 'J' // big-endian int32
	TypeInt64   ColType = 'K' // big-endian int64
	TypeFloat32 ColType = 'E' // IEEE-754 big-endian float32
	TypeFloat64 ColType = 'D' // IEEE-754 big-endian float64
	TypeChar    ColType = 'A' // character
)

// size returns the per-element byte width.
func (t ColType) size() int {
	switch t {
	case TypeByte, TypeChar:
		return 1
	case TypeInt16:
		return 2
	case TypeInt32, TypeFloat32:
		return 4
	case TypeInt64, TypeFloat64:
		return 8
	default:
		return 0
	}
}

// Column describes one field of a binary table.
type Column struct {
	Name   string
	Type   ColType
	Repeat int // elements per row; 1 for scalars, >1 for arrays, string length for TypeChar
	Unit   string
}

// width returns the column's byte width per row.
func (c Column) width() int {
	r := c.Repeat
	if r < 1 {
		r = 1
	}
	return r * c.Type.size()
}

// tform renders the TFORM value, e.g. "1D", "75E", "8A".
func (c Column) tform() string {
	r := c.Repeat
	if r < 1 {
		r = 1
	}
	return fmt.Sprintf("%d%c", r, c.Type)
}

// Table is an in-memory binary table: column metadata plus cell values.
// Cell values are typed per column: float64, float32, int64, int32, int16,
// byte, string, or slices of those for Repeat > 1.
type Table struct {
	Name string // EXTNAME
	Cols []Column
	Rows [][]any
}

// RowWidth returns the encoded byte width of one row.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Cols {
		w += c.width()
	}
	return w
}

// header builds the BINTABLE extension header.
func (t *Table) header() *Header {
	h := &Header{}
	h.Add("XTENSION", "BINTABLE", "binary table extension")
	h.Add("BITPIX", int64(8), "8-bit bytes")
	h.Add("NAXIS", int64(2), "2-dimensional table")
	h.Add("NAXIS1", int64(t.RowWidth()), "width of table in bytes")
	h.Add("NAXIS2", int64(len(t.Rows)), "number of rows")
	h.Add("PCOUNT", int64(0), "no group parameters")
	h.Add("GCOUNT", int64(1), "one data group")
	h.Add("TFIELDS", int64(len(t.Cols)), "number of fields per row")
	if t.Name != "" {
		h.Add("EXTNAME", t.Name, "table name")
	}
	for i, c := range t.Cols {
		h.Add(fmt.Sprintf("TTYPE%d", i+1), c.Name, "field name")
		h.Add(fmt.Sprintf("TFORM%d", i+1), c.tform(), "field format")
		if c.Unit != "" {
			h.Add(fmt.Sprintf("TUNIT%d", i+1), c.Unit, "field unit")
		}
	}
	return h
}

// appendCell encodes one cell (big-endian, per the FITS standard).
func appendCell(buf []byte, c Column, v any) ([]byte, error) {
	put16 := func(x uint16) { buf = binary.BigEndian.AppendUint16(buf, x) }
	put32 := func(x uint32) { buf = binary.BigEndian.AppendUint32(buf, x) }
	put64 := func(x uint64) { buf = binary.BigEndian.AppendUint64(buf, x) }
	repeat := c.Repeat
	if repeat < 1 {
		repeat = 1
	}
	switch c.Type {
	case TypeChar:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("fits: column %s expects string, got %T", c.Name, v)
		}
		b := make([]byte, repeat)
		copy(b, s)
		for i := len(s); i < repeat; i++ {
			b[i] = ' '
		}
		return append(buf, b...), nil
	case TypeByte:
		switch x := v.(type) {
		case byte:
			return append(buf, x), nil
		case []byte:
			if len(x) != repeat {
				return nil, fmt.Errorf("fits: column %s expects %d bytes, got %d", c.Name, repeat, len(x))
			}
			return append(buf, x...), nil
		}
	case TypeInt16:
		switch x := v.(type) {
		case int16:
			put16(uint16(x))
			return buf, nil
		case []int16:
			if len(x) != repeat {
				return nil, fmt.Errorf("fits: column %s length mismatch", c.Name)
			}
			for _, e := range x {
				put16(uint16(e))
			}
			return buf, nil
		}
	case TypeInt32:
		switch x := v.(type) {
		case int32:
			put32(uint32(x))
			return buf, nil
		case []int32:
			if len(x) != repeat {
				return nil, fmt.Errorf("fits: column %s length mismatch", c.Name)
			}
			for _, e := range x {
				put32(uint32(e))
			}
			return buf, nil
		}
	case TypeInt64:
		switch x := v.(type) {
		case int64:
			put64(uint64(x))
			return buf, nil
		case []int64:
			if len(x) != repeat {
				return nil, fmt.Errorf("fits: column %s length mismatch", c.Name)
			}
			for _, e := range x {
				put64(uint64(e))
			}
			return buf, nil
		}
	case TypeFloat32:
		switch x := v.(type) {
		case float32:
			put32(math.Float32bits(x))
			return buf, nil
		case []float32:
			if len(x) != repeat {
				return nil, fmt.Errorf("fits: column %s length mismatch", c.Name)
			}
			for _, e := range x {
				put32(math.Float32bits(e))
			}
			return buf, nil
		}
	case TypeFloat64:
		switch x := v.(type) {
		case float64:
			put64(math.Float64bits(x))
			return buf, nil
		case []float64:
			if len(x) != repeat {
				return nil, fmt.Errorf("fits: column %s length mismatch", c.Name)
			}
			for _, e := range x {
				put64(math.Float64bits(e))
			}
			return buf, nil
		}
	}
	return nil, fmt.Errorf("fits: column %s (%c): unsupported value type %T", c.Name, c.Type, v)
}

// decodeCell decodes one cell from row bytes.
func decodeCell(buf []byte, c Column) (any, int, error) {
	repeat := c.Repeat
	if repeat < 1 {
		repeat = 1
	}
	w := c.width()
	if len(buf) < w {
		return nil, 0, fmt.Errorf("fits: row truncated in column %s", c.Name)
	}
	switch c.Type {
	case TypeChar:
		return string(buf[:repeat]), w, nil
	case TypeByte:
		if repeat == 1 {
			return buf[0], w, nil
		}
		out := make([]byte, repeat)
		copy(out, buf)
		return out, w, nil
	case TypeInt16:
		if repeat == 1 {
			return int16(binary.BigEndian.Uint16(buf)), w, nil
		}
		out := make([]int16, repeat)
		for i := range out {
			out[i] = int16(binary.BigEndian.Uint16(buf[2*i:]))
		}
		return out, w, nil
	case TypeInt32:
		if repeat == 1 {
			return int32(binary.BigEndian.Uint32(buf)), w, nil
		}
		out := make([]int32, repeat)
		for i := range out {
			out[i] = int32(binary.BigEndian.Uint32(buf[4*i:]))
		}
		return out, w, nil
	case TypeInt64:
		if repeat == 1 {
			return int64(binary.BigEndian.Uint64(buf)), w, nil
		}
		out := make([]int64, repeat)
		for i := range out {
			out[i] = int64(binary.BigEndian.Uint64(buf[8*i:]))
		}
		return out, w, nil
	case TypeFloat32:
		if repeat == 1 {
			return math.Float32frombits(binary.BigEndian.Uint32(buf)), w, nil
		}
		out := make([]float32, repeat)
		for i := range out {
			out[i] = math.Float32frombits(binary.BigEndian.Uint32(buf[4*i:]))
		}
		return out, w, nil
	case TypeFloat64:
		if repeat == 1 {
			return math.Float64frombits(binary.BigEndian.Uint64(buf)), w, nil
		}
		out := make([]float64, repeat)
		for i := range out {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
		}
		return out, w, nil
	}
	return nil, 0, fmt.Errorf("fits: unsupported column type %c", c.Type)
}

// primaryHeader returns the minimal primary HDU header (no image data).
func primaryHeader() *Header {
	h := &Header{}
	h.Add("SIMPLE", true, "conforms to FITS standard")
	h.Add("BITPIX", int64(8), "8-bit bytes")
	h.Add("NAXIS", int64(0), "no primary image")
	h.Add("EXTEND", true, "extensions follow")
	return h
}

// Write emits a complete FITS file: a minimal primary HDU followed by the
// table as a BINTABLE extension.
func (t *Table) Write(w io.Writer) error {
	if err := primaryHeader().writeTo(w); err != nil {
		return err
	}
	if err := t.header().writeTo(w); err != nil {
		return err
	}
	var n int64
	buf := make([]byte, 0, t.RowWidth())
	for ri, row := range t.Rows {
		if len(row) != len(t.Cols) {
			return fmt.Errorf("fits: row %d has %d cells, table has %d columns", ri, len(row), len(t.Cols))
		}
		buf = buf[:0]
		var err error
		for ci, cell := range row {
			if buf, err = appendCell(buf, t.Cols[ci], cell); err != nil {
				return fmt.Errorf("fits: row %d: %w", ri, err)
			}
		}
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			return err
		}
	}
	return padBlock(w, n)
}

// ReadTable reads a FITS file produced by Write: it skips the primary HDU
// and decodes the first BINTABLE extension.
func ReadTable(r io.Reader) (*Table, error) {
	// Primary header (no data: NAXIS=0).
	ph, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if v, ok := ph.Get("SIMPLE"); !ok || v != true {
		return nil, fmt.Errorf("fits: not a FITS file (SIMPLE missing)")
	}
	return readBinTableHDU(r)
}

// readBinTableHDU reads one BINTABLE extension header + data.
func readBinTableHDU(r io.Reader) (*Table, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	xt, err := h.GetString("XTENSION")
	if err != nil || xt != "BINTABLE" {
		return nil, fmt.Errorf("fits: expected BINTABLE extension, got %q (%v)", xt, err)
	}
	naxis1, err := h.GetInt("NAXIS1")
	if err != nil {
		return nil, err
	}
	naxis2, err := h.GetInt("NAXIS2")
	if err != nil {
		return nil, err
	}
	tfields, err := h.GetInt("TFIELDS")
	if err != nil {
		return nil, err
	}
	t := &Table{}
	if name, err := h.GetString("EXTNAME"); err == nil {
		t.Name = name
	}
	for i := int64(1); i <= tfields; i++ {
		name, err := h.GetString(fmt.Sprintf("TTYPE%d", i))
		if err != nil {
			return nil, err
		}
		form, err := h.GetString(fmt.Sprintf("TFORM%d", i))
		if err != nil {
			return nil, err
		}
		col := Column{Name: name}
		if len(form) < 1 {
			return nil, fmt.Errorf("fits: empty TFORM%d", i)
		}
		col.Type = ColType(form[len(form)-1])
		if col.Type.size() == 0 {
			return nil, fmt.Errorf("fits: unsupported TFORM %q", form)
		}
		col.Repeat = 1
		if len(form) > 1 {
			n, err := fmt.Sscanf(form[:len(form)-1], "%d", &col.Repeat)
			if n != 1 || err != nil {
				return nil, fmt.Errorf("fits: bad TFORM %q", form)
			}
		}
		if unit, err := h.GetString(fmt.Sprintf("TUNIT%d", i)); err == nil {
			col.Unit = unit
		}
		t.Cols = append(t.Cols, col)
	}
	if int64(t.RowWidth()) != naxis1 {
		return nil, fmt.Errorf("fits: NAXIS1=%d but columns sum to %d", naxis1, t.RowWidth())
	}
	rowBuf := make([]byte, naxis1)
	for ri := int64(0); ri < naxis2; ri++ {
		if _, err := io.ReadFull(r, rowBuf); err != nil {
			return nil, fmt.Errorf("fits: truncated data at row %d: %w", ri, err)
		}
		row := make([]any, len(t.Cols))
		off := 0
		for ci, c := range t.Cols {
			v, w, err := decodeCell(rowBuf[off:], c)
			if err != nil {
				return nil, err
			}
			row[ci] = v
			off += w
		}
		t.Rows = append(t.Rows, row)
	}
	if err := skipPad(r, naxis1*naxis2); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return t, nil
}
