module sdss

go 1.24
